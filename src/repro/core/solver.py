"""Solver facade: one entry point over every PAR algorithm in the library.

:func:`solve` dispatches by name to the paper's algorithm (``"phocus"``),
its sub-procedures, the optimal-guarantee and exact references, and the
Section 5.2 baselines.  Whatever algorithm ran, the returned
:class:`Solution` always reports the *true* contextual objective value of
the selection, the byte cost, and (optionally) the online-bound performance
certificate — so experiment code compares apples to apples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core import baselines
from repro.core.bounds import online_bound
from repro.core.bruteforce import branch_and_bound
from repro.core.greedy import CB, UC, lazy_greedy, main_algorithm
from repro.core.instance import PARInstance
from repro.core.objective import score
from repro.core.sviridenko import sviridenko
from repro.errors import (
    ConfigurationError,
    ReproError,
    StorageExhausted,
    TransientSolveError,
)

__all__ = [
    "Solution",
    "solve",
    "solve_many",
    "available_algorithms",
    "checkpointable_algorithms",
    "classify_failure",
    "TRANSIENT",
    "PERMANENT",
]

TRANSIENT = "transient"
PERMANENT = "permanent"

# Environmental fault types that a retry can plausibly outrun.  Library
# errors (bad input, unknown algorithm, infeasible budget) are by
# definition deterministic and retrying them only wastes worker time.
_TRANSIENT_TYPES = (TransientSolveError, OSError, MemoryError, TimeoutError)


def classify_failure(exc: BaseException) -> str:
    """Classify a solve failure as :data:`TRANSIENT` or :data:`PERMANENT`.

    The job orchestration layer (:mod:`repro.jobs`) retries transient
    failures with exponential backoff and fails permanent ones on the
    first attempt.  :class:`~repro.errors.TransientSolveError` is the
    explicit escape hatch for callers that know their fault is retryable.
    """
    if isinstance(exc, TransientSolveError):
        return TRANSIENT
    if isinstance(exc, StorageExhausted):
        # Disk-full is environmental: space can be reclaimed (journal
        # compaction, tenant deletes, operator action), so retry.  Checked
        # before the ReproError rule that would call it permanent.
        return TRANSIENT
    if isinstance(exc, ReproError):
        return PERMANENT
    if isinstance(exc, _TRANSIENT_TYPES):
        return TRANSIENT
    return PERMANENT


@dataclass
class Solution:
    """The outcome of a PAR solve.

    Attributes
    ----------
    algorithm:
        Name under which the solver was invoked.
    selection:
        Sorted retained photo ids (always a superset of ``S0``).
    value:
        True objective ``G(S)`` of the selection.
    cost:
        Byte cost ``C(S)``.
    budget:
        Budget the solve ran under.
    elapsed_seconds:
        Wall-clock solve time.
    ratio_certificate:
        ``G(S) / online_bound`` when a certificate was requested — a
        data-dependent lower bound on the approximation ratio.
    extras:
        Algorithm-specific diagnostics (evaluation counts, winning greedy
        mode, search nodes, ...).
    """

    algorithm: str
    selection: List[int]
    value: float
    cost: float
    budget: float
    elapsed_seconds: float
    ratio_certificate: Optional[float] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def budget_utilisation(self) -> float:
        """Fraction of the budget actually spent."""
        return self.cost / self.budget if self.budget > 0 else 0.0


def _greedy_extras(run) -> Dict[str, object]:
    extras: Dict[str, object] = {"evaluations": run.evaluations, "picks": len(run.picks)}
    if run.resumed_at is not None:
        extras["resumed_from_picks"] = run.resumed_at
    return extras


def _run_phocus(instance: PARInstance, rng, **checkpoint_kwargs) -> tuple:
    run = main_algorithm(instance, **checkpoint_kwargs)
    extras = _greedy_extras(run)
    extras["mode"] = run.mode
    return run.selection, extras


def _run_lazy_uc(instance: PARInstance, rng, **checkpoint_kwargs) -> tuple:
    run = lazy_greedy(instance, UC, **checkpoint_kwargs)
    return run.selection, _greedy_extras(run)


def _run_lazy_cb(instance: PARInstance, rng, **checkpoint_kwargs) -> tuple:
    run = lazy_greedy(instance, CB, **checkpoint_kwargs)
    return run.selection, _greedy_extras(run)


def _run_naive_greedy(instance: PARInstance, rng) -> tuple:
    run = main_algorithm(instance, lazy=False)
    return run.selection, {"mode": run.mode, "evaluations": run.evaluations}


def _run_sviridenko(instance: PARInstance, rng) -> tuple:
    res = sviridenko(instance)
    return res.selection, {
        "evaluations": res.evaluations,
        "seeds_tried": res.seeds_tried,
    }


def _run_bruteforce(instance: PARInstance, rng) -> tuple:
    res = branch_and_bound(instance)
    return res.selection, {"nodes": res.nodes, "exact": True}


def _run_rand_a(instance: PARInstance, rng) -> tuple:
    return baselines.rand_add(instance, rng), {}


def _run_rand_d(instance: PARInstance, rng) -> tuple:
    return baselines.rand_delete(instance, rng), {}


def _run_greedy_nr(instance: PARInstance, rng) -> tuple:
    return baselines.greedy_no_redundancy(instance), {}


def _run_greedy_ncs(instance: PARInstance, rng) -> tuple:
    return baselines.greedy_non_contextual(instance), {}


_REGISTRY: Dict[str, Callable] = {
    "phocus": _run_phocus,
    "lazy-uc": _run_lazy_uc,
    "lazy-cb": _run_lazy_cb,
    "naive-greedy": _run_naive_greedy,
    "sviridenko": _run_sviridenko,
    "bruteforce": _run_bruteforce,
    "rand-a": _run_rand_a,
    "rand-d": _run_rand_d,
    "greedy-nr": _run_greedy_nr,
    "greedy-ncs": _run_greedy_ncs,
}


# Algorithms whose solves can be checkpointed and resumed mid-run.
_CHECKPOINTABLE = frozenset({"phocus", "lazy-uc", "lazy-cb"})


def available_algorithms() -> List[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_REGISTRY)


def checkpointable_algorithms() -> List[str]:
    """Algorithms accepting ``checkpoint_every`` / ``resume_from``."""
    return sorted(_CHECKPOINTABLE)


def solve(
    instance: PARInstance,
    algorithm: str = "phocus",
    *,
    certificate: bool = False,
    rng: Optional[np.random.Generator] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_sink: Optional[Callable[[Dict[str, object]], None]] = None,
    resume_from: Optional[Dict[str, object]] = None,
) -> Solution:
    """Solve a PAR instance with the named algorithm.

    Parameters
    ----------
    instance:
        The validated PAR instance (already sparsified if desired — use
        :func:`repro.sparsify.pipeline.sparsify_instance` beforehand).
    algorithm:
        One of :func:`available_algorithms` (default ``"phocus"``,
        the paper's Algorithm 1).
    certificate:
        When true, additionally compute the online-bound approximation-ratio
        certificate (costs one extra pass of gain evaluations).
    rng:
        Randomness source for the randomised baselines.
    checkpoint_every / checkpoint_sink / resume_from:
        Crash-safety controls for the checkpointable algorithms (see
        :func:`checkpointable_algorithms` and
        :mod:`repro.core.checkpoint`): emit a resumable snapshot every
        ``checkpoint_every`` picks, and/or restart from a previously
        captured checkpoint document.
    """
    try:
        runner = _REGISTRY[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {available_algorithms()}"
        ) from None
    wants_checkpoint = (
        checkpoint_every is not None
        or checkpoint_sink is not None
        or resume_from is not None
    )
    if wants_checkpoint and algorithm not in _CHECKPOINTABLE:
        raise ConfigurationError(
            f"algorithm {algorithm!r} does not support checkpointing; "
            f"checkpointable: {checkpointable_algorithms()}"
        )

    start = time.perf_counter()
    if wants_checkpoint:
        selection, extras = runner(
            instance,
            rng,
            checkpoint_every=checkpoint_every,
            checkpoint_sink=checkpoint_sink,
            resume_from=resume_from,
        )
    else:
        selection, extras = runner(instance, rng)
    elapsed = time.perf_counter() - start

    selection = sorted(set(int(p) for p in selection) | instance.retained)
    value = score(instance, selection)
    ratio: Optional[float] = None
    if certificate:
        bound = online_bound(instance, selection)
        ratio = 1.0 if bound <= 0 else min(1.0, value / bound)
    return Solution(
        algorithm=algorithm,
        selection=selection,
        value=value,
        cost=instance.cost_of(selection),
        budget=instance.budget,
        elapsed_seconds=elapsed,
        ratio_certificate=ratio,
        extras=extras,
    )


def solve_many(instance: PARInstance, tasks, *, workers: Optional[int] = None) -> List[Solution]:
    """Solve a batch of independent tasks over one instance.

    ``tasks`` is a sequence of :class:`repro.core.parallel.SolveTask` (or
    dicts with the same fields).  With ``workers > 1`` the instance is
    exported once into shared memory and solves fan out over a process
    pool; results always come back in task order.  See
    :mod:`repro.core.parallel` for the mechanics.
    """
    from repro.core.parallel import solve_batch

    return solve_batch(instance, tasks, workers=workers)
