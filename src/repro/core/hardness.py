"""The Theorem 3.4 reduction: Maximum Coverage → PAR.

The paper proves PAR is NP-hard to approximate beyond ``1 − 1/e`` by
embedding Maximum Coverage (MC) instances into PAR:

* every MC set ``s`` becomes a photo ``p_s`` of unit cost;
* every MC element ``e`` becomes a pre-defined subset ``q_e`` of weight 1
  containing the photos of the sets that cover ``e``, with uniform
  relevance ``1 / |q_e|``;
* similarities within a subset are all 1 (and 0 across subsets);
* the budget is the MC cardinality bound ``k``.

Selecting any one photo of ``q_e`` then scores the full weight of ``q_e``,
exactly mirroring "covering" element ``e``.  This module materialises the
reduction so tests can verify the equivalence empirically (both directions:
PAR scores equal MC coverage counts, and optimal solutions transfer).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)
from repro.errors import ValidationError

__all__ = [
    "MaxCoverageInstance",
    "greedy_max_coverage",
    "exact_max_coverage",
    "mc_to_par",
    "par_selection_to_mc",
]


@dataclass
class MaxCoverageInstance:
    """A Maximum Coverage instance: choose ``k`` sets covering most elements.

    ``sets`` is a list of element-id collections over universe
    ``0 .. n_elements - 1``.
    """

    n_elements: int
    sets: List[FrozenSet[int]]
    k: int

    def __post_init__(self) -> None:
        if self.n_elements <= 0:
            raise ValidationError("universe must be non-empty")
        if self.k <= 0:
            raise ValidationError("k must be positive")
        normalized = []
        for si, s in enumerate(self.sets):
            fs = frozenset(int(e) for e in s)
            for e in fs:
                if e < 0 or e >= self.n_elements:
                    raise ValidationError(
                        f"set {si} covers element {e} outside the universe"
                    )
            normalized.append(fs)
        self.sets = normalized

    def coverage(self, chosen: Sequence[int]) -> int:
        """Number of elements covered by the chosen set indices."""
        covered: Set[int] = set()
        for si in chosen:
            covered |= self.sets[si]
        return len(covered)


def greedy_max_coverage(mc: MaxCoverageInstance) -> Tuple[List[int], int]:
    """The classical (1 − 1/e) greedy for Maximum Coverage [37]."""
    covered: Set[int] = set()
    chosen: List[int] = []
    remaining = set(range(len(mc.sets)))
    for _ in range(min(mc.k, len(mc.sets))):
        best_si, best_gain = -1, 0
        for si in remaining:
            gain = len(mc.sets[si] - covered)
            if gain > best_gain:
                best_si, best_gain = si, gain
        if best_si < 0:
            break
        chosen.append(best_si)
        covered |= mc.sets[best_si]
        remaining.discard(best_si)
    return chosen, len(covered)


def exact_max_coverage(mc: MaxCoverageInstance, max_sets: int = 20) -> Tuple[List[int], int]:
    """Optimal Maximum Coverage by enumeration (small instances only)."""
    if len(mc.sets) > max_sets:
        raise ValueError(f"exact MC limited to {max_sets} sets")
    best_combo: Tuple[int, ...] = ()
    best_cov = 0
    for combo in combinations(range(len(mc.sets)), min(mc.k, len(mc.sets))):
        cov = mc.coverage(combo)
        if cov > best_cov:
            best_cov = cov
            best_combo = combo
    return list(best_combo), best_cov


def mc_to_par(mc: MaxCoverageInstance) -> PARInstance:
    """Materialise the Theorem 3.4 reduction as a PAR instance.

    The resulting instance satisfies: for any selection ``S`` of photos,
    ``G(S)`` equals the number of MC elements covered by the corresponding
    sets (elements covered by no set contribute no subset and are ignored
    on both sides).
    """
    photos = [Photo(photo_id=si, cost=1.0, label=f"set-{si}") for si in range(len(mc.sets))]
    subsets: List[PredefinedSubset] = []
    for e in range(mc.n_elements):
        members = [si for si, s in enumerate(mc.sets) if e in s]
        if not members:
            continue  # an uncoverable element contributes nothing on either side
        m = len(members)
        sim = np.ones((m, m), dtype=np.float64)
        subsets.append(
            PredefinedSubset(
                subset_id=f"element-{e}",
                weight=1.0,
                members=members,
                relevance=[1.0 / m] * m,
                similarity=DenseSimilarity(sim),
            )
        )
    return PARInstance(photos, subsets, budget=float(mc.k))


def par_selection_to_mc(selection: Sequence[int]) -> List[int]:
    """Map a PAR solution of the reduced instance back to MC set indices."""
    return sorted(int(p) for p in selection)
