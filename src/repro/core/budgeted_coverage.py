"""Budgeted Maximum Coverage (Khuller, Moss & Naor [25]).

Given weighted universe items, sets with costs, and a budget, select sets of
total cost at most the budget maximising the total weight of covered items.

The paper uses this problem twice:

* the hardness reduction (Theorem 3.4) shows PAR generalises (unweighted,
  unit-cost) Maximum Coverage, and
* the data-dependent sparsification bound (Theorem 4.8) needs, for a given
  threshold τ, a high-coverage witness set ``S`` in the τ-sparsified
  neighbourhood structure — i.e. a Budgeted Max Coverage solution whose
  covered weight fraction is the ``α`` in the ``1/(1 + 1/α)`` bound.

:func:`greedy_budgeted_coverage` implements the classic best-of-two greedy
(cost-density greedy vs. best single affordable set), which carries a
``(1 − 1/e)/2`` guarantee — ample for producing a bound witness, and the
same structure as the paper's Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ValidationError

__all__ = ["CoverageProblem", "CoverageSolution", "greedy_budgeted_coverage"]


@dataclass
class CoverageProblem:
    """A Budgeted Maximum Coverage instance.

    Attributes
    ----------
    item_weights:
        Weight per universe item (indexed ``0 .. m-1``).
    sets:
        For each selectable set, the array of item indices it covers.
    set_costs:
        Cost per selectable set.
    budget:
        Upper bound on the total cost of chosen sets.
    """

    item_weights: np.ndarray
    sets: List[np.ndarray]
    set_costs: np.ndarray
    budget: float

    def __post_init__(self) -> None:
        self.item_weights = np.asarray(self.item_weights, dtype=np.float64)
        self.set_costs = np.asarray(self.set_costs, dtype=np.float64)
        if np.any(self.item_weights < 0):
            raise ValidationError("item weights must be nonnegative")
        if len(self.sets) != self.set_costs.size:
            raise ValidationError("one cost required per set")
        if np.any(self.set_costs <= 0):
            raise ValidationError("set costs must be positive")
        if not (self.budget > 0):
            raise ValidationError("budget must be positive")
        m = self.item_weights.size
        normalized = []
        for si, items in enumerate(self.sets):
            arr = np.unique(np.asarray(items, dtype=np.int64))
            if arr.size and (arr.min() < 0 or arr.max() >= m):
                raise ValidationError(f"set {si} covers an item outside 0..{m - 1}")
            normalized.append(arr)
        self.sets = normalized

    @property
    def total_weight(self) -> float:
        """Total universe weight ``W_R``."""
        return float(self.item_weights.sum())


@dataclass
class CoverageSolution:
    """Chosen sets plus achieved coverage."""

    chosen: List[int]
    covered_weight: float
    cost: float
    covered_items: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def coverage_fraction(self, total_weight: float) -> float:
        """The ``α`` of Theorem 4.8: covered weight over total weight."""
        if total_weight <= 0:
            return 0.0
        return self.covered_weight / total_weight


def greedy_budgeted_coverage(problem: CoverageProblem) -> CoverageSolution:
    """Best-of-two greedy for Budgeted Maximum Coverage [25].

    Candidate A: repeatedly add the affordable set with the best
    uncovered-weight-to-cost density.  Candidate B: the single affordable
    set with the largest covered weight.  Return the better of the two —
    a ``(1 − 1/e)/2``-approximation.
    """
    m = problem.item_weights.size
    weights = problem.item_weights
    costs = problem.set_costs

    # Candidate A: density greedy.
    covered = np.zeros(m, dtype=bool)
    chosen: List[int] = []
    spent = 0.0
    remaining = set(range(len(problem.sets)))
    while True:
        best_si, best_key, best_gain = -1, 0.0, 0.0
        for si in remaining:
            if spent + costs[si] > problem.budget * (1 + 1e-12):
                continue
            items = problem.sets[si]
            gain = float(weights[items[~covered[items]]].sum()) if items.size else 0.0
            key = gain / costs[si]
            if key > best_key:
                best_si, best_key, best_gain = si, key, gain
        if best_si < 0 or best_gain <= 0:
            break
        covered[problem.sets[best_si]] = True
        chosen.append(best_si)
        spent += float(costs[best_si])
        remaining.discard(best_si)
    greedy_weight = float(weights[covered].sum())

    # Candidate B: best single affordable set.
    best_single, best_single_weight = -1, 0.0
    for si in range(len(problem.sets)):
        if costs[si] > problem.budget * (1 + 1e-12):
            continue
        w = float(weights[problem.sets[si]].sum())
        if w > best_single_weight:
            best_single, best_single_weight = si, w

    if best_single >= 0 and best_single_weight > greedy_weight:
        covered = np.zeros(m, dtype=bool)
        covered[problem.sets[best_single]] = True
        return CoverageSolution(
            chosen=[best_single],
            covered_weight=best_single_weight,
            cost=float(costs[best_single]),
            covered_items=covered,
        )
    return CoverageSolution(
        chosen=chosen,
        covered_weight=greedy_weight,
        cost=spent,
        covered_items=covered,
    )
