"""Sviridenko's optimal (1 − 1/e) knapsack-submodular algorithm [45].

Theorem 4.6 of the paper: because the PAR objective is nonnegative,
monotone and submodular (Lemma 4.5), the partial-enumeration greedy of
Sviridenko achieves the optimal ``1 − 1/e`` approximation under a knapsack
constraint.  The scheme:

1. evaluate every feasible solution of at most two photos directly;
2. for every feasible *triple* of photos, complete it greedily — repeatedly
   add the photo with the best marginal-gain-to-cost density that still
   fits the budget;
3. return the best solution seen.

Its ``Ω(B · n^4)`` gain evaluations make it impractical beyond a few dozen
photos (Section 4.2), which is precisely why the paper adopts the CELF
scheme; we keep it as the optimal-guarantee reference and for the
scalability comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Tuple

from repro.core.instance import PARInstance
from repro.core.objective import CoverageState

__all__ = ["SviridenkoResult", "sviridenko"]


@dataclass
class SviridenkoResult:
    """Best solution found by partial enumeration plus search statistics."""

    selection: List[int]
    value: float
    cost: float
    evaluations: int = 0
    seeds_tried: int = 0


def _greedy_complete(
    instance: PARInstance,
    seed: Iterable[int],
) -> Tuple[CoverageState, float, int]:
    """Density-greedy completion of ``S0 ∪ seed`` within the budget."""
    state = CoverageState(instance, set(instance.retained) | set(seed))
    spent = instance.cost_of(state.selected)
    costs = instance.costs
    evaluations = 0
    remaining = [p for p in range(instance.n) if p not in state.selected]
    while True:
        best_p, best_key = -1, 0.0
        for p in remaining:
            if spent + costs[p] > instance.budget * (1 + 1e-12):
                continue
            gain = state.gain(p)
            evaluations += 1
            key = gain / costs[p]
            if key > best_key:
                best_key, best_p = key, p
        if best_p < 0:
            break
        state.add(best_p)
        spent += float(costs[best_p])
        remaining.remove(best_p)
    return state, spent, evaluations


def sviridenko(instance: PARInstance, max_photos: int = 60) -> SviridenkoResult:
    """Run the partial-enumeration greedy of [45] on a (small) instance.

    Raises ``ValueError`` when the instance has more than ``max_photos``
    free photos: the ``O(n^3)`` seed enumeration would be intractable, and
    :func:`repro.core.greedy.main_algorithm` should be used instead.
    """
    free = [p for p in range(instance.n) if p not in instance.retained]
    if len(free) > max_photos:
        raise ValueError(
            f"sviridenko limited to {max_photos} free photos; instance has "
            f"{len(free)} (use main_algorithm for large instances)"
        )
    base_spent = instance.cost_of(instance.retained)
    budget = instance.budget
    costs = instance.costs

    best_state = CoverageState(instance, instance.retained)
    best_value = best_state.value
    best_selection = sorted(best_state.selected)
    evaluations = 0
    seeds = 0

    def consider(state: CoverageState) -> None:
        nonlocal best_value, best_selection
        if state.value > best_value + 1e-12:
            best_value = state.value
            best_selection = sorted(state.selected)

    # Phase 1: all solutions of cardinality <= 2 beyond S0.
    for r in (1, 2):
        for combo in combinations(free, r):
            extra = float(costs[list(combo)].sum())
            if base_spent + extra > budget * (1 + 1e-12):
                continue
            seeds += 1
            state = CoverageState(instance, set(instance.retained) | set(combo))
            consider(state)

    # Phase 2: greedy completion of every feasible triple.
    for combo in combinations(free, 3):
        extra = float(costs[list(combo)].sum())
        if base_spent + extra > budget * (1 + 1e-12):
            continue
        seeds += 1
        state, _, evals = _greedy_complete(instance, combo)
        evaluations += evals
        consider(state)

    return SviridenkoResult(
        selection=best_selection,
        value=float(best_value),
        cost=instance.cost_of(best_selection),
        evaluations=evaluations,
        seeds_tried=seeds,
    )
