"""Shared-memory parallel batch solving.

A Fig 5-style experiment runs many *independent* solves over the same
archive — a budget sweep, UC/CB pairs, an algorithm grid.  Naively fanning
those out with :class:`~concurrent.futures.ProcessPoolExecutor` would
pickle the full instance (dense similarity matrices included) once per
task, which for archive-scale instances costs more than the solve itself.

This module instead places every large array of a :class:`PARInstance` —
costs, per-subset similarity backends, and the flat incidence CSR the
kernels run on — into a single :mod:`multiprocessing.shared_memory` block.
Workers attach by *name* and rebuild the instance as zero-copy numpy views
over the mapped buffer; only a small spec dict (names, weights, offsets)
crosses the pickle boundary per task.

Lifecycle: the parent creates the block, runs the batch, then closes *and
unlinks* it in a ``finally`` — the segment is removed even when a task
fails.  Workers attach once per block name and never unlink; if a worker
crashes, its mapping dies with the process and the parent's ``finally``
still reclaims the segment.  (On Python < 3.13 worker attachment also
registers with the resource tracker; pool workers share the parent's
tracker process, whose registry is a set, so the duplicate registration is
harmless and the parent's unlink clears it.)

Determinism: results come back in task order regardless of completion
order, and ``workers=1`` runs the identical code path inline, so a batch
is reproducible at any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    IncidenceCSR,
    PARInstance,
    Photo,
    PredefinedSubset,
    SimilarityBackend,
    SparseSimilarity,
)
from repro.core.solver import Solution, available_algorithms, solve
from repro.errors import ConfigurationError, InfeasibleError
from repro.resilience import deadline as _deadline

__all__ = [
    "SolveTask",
    "SharedInstance",
    "attach_instance",
    "build_view_instance",
    "solve_batch",
    "default_workers",
]


@dataclass(frozen=True)
class SolveTask:
    """One unit of a batch: an algorithm run with optional overrides.

    ``budget`` overrides the shared instance's budget (the incidence CSR
    and similarities are budget-independent, so a sweep shares one
    instance); ``seed`` seeds the randomised baselines; ``label`` is an
    opaque tag echoed into ``Solution.extras["task_label"]`` so grid
    callers can route results without positional bookkeeping.
    """

    algorithm: str = "phocus"
    budget: Optional[float] = None
    certificate: bool = False
    seed: Optional[int] = None
    label: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "budget": self.budget,
            "certificate": self.certificate,
            "seed": self.seed,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SolveTask":
        return cls(
            algorithm=str(doc.get("algorithm", "phocus")),
            budget=None if doc.get("budget") is None else float(doc["budget"]),
            certificate=bool(doc.get("certificate", False)),
            seed=None if doc.get("seed") is None else int(doc["seed"]),
            label=str(doc.get("label", "")),
        )


def default_workers() -> int:
    """Worker count matched to the visible CPUs (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Packing: instance -> one shared-memory block + picklable spec
# ---------------------------------------------------------------------------


class _Packer:
    """Accumulates arrays into one contiguous 8-byte-aligned layout."""

    def __init__(self) -> None:
        self._pending: List[Tuple[int, np.ndarray]] = []
        self.size = 0

    def add(self, arr: np.ndarray) -> Dict[str, object]:
        arr = np.ascontiguousarray(arr)
        ref = {
            "offset": self.size,
            "shape": tuple(int(s) for s in arr.shape),
            "dtype": arr.dtype.str,
        }
        self._pending.append((self.size, arr))
        self.size = (self.size + arr.nbytes + 7) & ~7
        return ref

    def write_into(self, shm: shared_memory.SharedMemory) -> None:
        for offset, arr in self._pending:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
            view[...] = arr
        self._pending.clear()


def _view(shm: shared_memory.SharedMemory, ref: Dict[str, object]) -> np.ndarray:
    return np.ndarray(
        ref["shape"], dtype=np.dtype(ref["dtype"]), buffer=shm.buf, offset=ref["offset"]
    )


class SharedInstance:
    """A :class:`PARInstance` exported into one shared-memory segment.

    The constructor packs every array; :attr:`name` and :attr:`spec` are
    the (cheap, picklable) handle workers need to :meth:`attach`.  Use as a
    context manager — exit closes *and unlinks* the segment.  Workers that
    attached keep their mapping until process exit (POSIX keeps unlinked
    segments alive while mapped), so unlinking early is safe.

    ``name`` requests an explicit segment name — the tenant warm cache
    (:mod:`repro.tenants.cache`) names its segments with a recognisable,
    pid-stamped prefix so a crash-recovery sweep can find and reclaim
    segments leaked by dead processes.

    :meth:`materialize` rebuilds the instance *in this process* as
    zero-copy numpy views over the owned mapping — the same construction
    workers perform via :func:`attach_instance`, minus the extra
    attachment.  This is how a warm-cached instance is served to the
    threaded service without deserialising or re-packing anything.
    """

    def __init__(self, instance: PARInstance, *, name: Optional[str] = None) -> None:
        packer = _Packer()
        subset_specs: List[Dict[str, object]] = []
        for q in instance.subsets:
            sim: SimilarityBackend = q.similarity
            if sim.is_sparse:
                indptr, cols, vals = sim.csr()
                sim_spec: Dict[str, object] = {
                    "kind": "sparse",
                    "size": len(sim),
                    "indptr": packer.add(indptr),
                    "cols": packer.add(cols),
                    "vals": packer.add(vals),
                }
            else:
                sim_spec = {"kind": "dense", "matrix": packer.add(sim.matrix)}
            subset_specs.append(
                {
                    "subset_id": q.subset_id,
                    "weight": q.weight,
                    "members": packer.add(q.members),
                    "relevance": packer.add(q.relevance),
                    "similarity": sim_spec,
                }
            )
        inc = instance.incidence
        self.spec: Dict[str, object] = {
            "n": instance.n,
            "budget": instance.budget,
            "retained": sorted(instance.retained),
            "costs": packer.add(instance.costs),
            "subsets": subset_specs,
            "incidence": {
                "subset_offsets": packer.add(inc.subset_offsets),
                "photo_member_indptr": packer.add(inc.photo_member_indptr),
                "member_entry_indptr": packer.add(inc.member_entry_indptr),
                "entry_indptr": packer.add(inc.entry_indptr),
                "slots": packer.add(inc.slots),
                "sims": packer.add(inc.sims),
                "wrel": packer.add(inc.wrel),
            },
        }
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(packer.size, 1), name=name
        )
        packer.write_into(self._shm)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def materialize(self, *, budget: Optional[float] = None) -> PARInstance:
        """This process's zero-copy view instance (see class docstring)."""
        return build_view_instance(self._shm, self.spec, budget=budget)

    def close(self) -> None:
        """Remove the segment and unmap it (idempotent).

        The unlink happens *first* and unconditionally: POSIX keeps the
        memory alive while any mapping exists, so removing the name early
        is safe, and it guarantees no segment outlives its owner even
        when live numpy views (a :meth:`materialize` instance still held
        by a caller) make the unmap itself fail with ``BufferError``.
        The mapping is then released when the last view dies.
        """
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (idempotent close)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - live views in this process
            pass

    def __enter__(self) -> "SharedInstance":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker side: attach by name, rebuild as views
# ---------------------------------------------------------------------------

# One mapping per segment name per worker process; released at process exit.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no track flag and registers the attachment
            # with the resource tracker.  Pool workers share the parent's
            # tracker process (its pipe is inherited through fork/spawn
            # preparation), whose registry is a set — the duplicate
            # registration is a no-op and the parent's unlink clears it, so
            # no unregister gymnastics are needed.
            shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def attach_instance(
    name: str, spec: Dict[str, object], *, budget: Optional[float] = None
) -> PARInstance:
    """Rebuild the shared instance as zero-copy views (worker side)."""
    return build_view_instance(_attach(name), spec, budget=budget)


def build_view_instance(
    shm: shared_memory.SharedMemory,
    spec: Dict[str, object],
    *,
    budget: Optional[float] = None,
) -> PARInstance:
    """Rebuild a packed instance as zero-copy views over ``shm``.

    Bypasses :class:`PARInstance` validation — the packer validated the
    instance before packing, and re-validating would force copies.  Photo
    labels/metadata and embeddings are not shipped (no solver reads them);
    the budget override re-checks retention-set feasibility so a sweep
    budget below ``C(S0)`` fails exactly like a normal construction.
    """
    n = int(spec["n"])
    costs = _view(shm, spec["costs"])

    subsets: List[PredefinedSubset] = []
    for s in spec["subsets"]:
        sim_spec = s["similarity"]
        if sim_spec["kind"] == "sparse":
            indptr = _view(shm, sim_spec["indptr"])
            cols = _view(shm, sim_spec["cols"])
            vals = _view(shm, sim_spec["vals"])
            size = int(sim_spec["size"])
            backend: SimilarityBackend = SparseSimilarity.__new__(SparseSimilarity)
            backend._size = size
            backend._indptr = indptr
            backend._cols = cols
            backend._vals = vals
        else:
            backend = DenseSimilarity.__new__(DenseSimilarity)
            backend.matrix = _view(shm, sim_spec["matrix"])
        subset = PredefinedSubset.__new__(PredefinedSubset)
        subset.subset_id = s["subset_id"]
        subset.weight = float(s["weight"])
        subset.members = _view(shm, s["members"])
        subset.relevance = _view(shm, s["relevance"])
        subset.similarity = backend
        subset._local = {int(p): i for i, p in enumerate(subset.members)}
        subsets.append(subset)

    inst = PARInstance.__new__(PARInstance)
    inst.photos = [Photo(photo_id=i, cost=float(costs[i])) for i in range(n)]
    inst.n = n
    inst.costs = costs
    inst.budget = float(spec["budget"] if budget is None else budget)
    inst.subsets = subsets
    inst.retained = frozenset(int(p) for p in spec["retained"])
    inst.embeddings = None
    inst.variants = None  # variant catalogs do not ride the shm pack
    inst.membership = [[] for _ in range(n)]
    for qi, q in enumerate(subsets):
        for local, photo_id in enumerate(q.members):
            inst.membership[int(photo_id)].append((qi, local))
    inc = spec["incidence"]
    inst.incidence = IncidenceCSR(
        _view(shm, inc["subset_offsets"]),
        _view(shm, inc["photo_member_indptr"]),
        _view(shm, inc["member_entry_indptr"]),
        _view(shm, inc["entry_indptr"]),
        _view(shm, inc["slots"]),
        _view(shm, inc["sims"]),
        _view(shm, inc["wrel"]),
    )
    retained_cost = inst.cost_of(inst.retained)
    if retained_cost > inst.budget * (1 + 1e-12):
        raise InfeasibleError(
            f"retention set costs {retained_cost:.1f} bytes, which exceeds "
            f"the budget of {inst.budget:.1f} bytes"
        )
    return inst


def _run_task(instance: PARInstance, task: SolveTask) -> Solution:
    """Run one task (both the serial path and workers call exactly this)."""
    if task.budget is not None and task.budget != instance.budget:
        instance = instance.with_budget(task.budget)
    rng = None if task.seed is None else np.random.default_rng(task.seed)
    solution = solve(
        instance, task.algorithm, certificate=task.certificate, rng=rng
    )
    if task.label:
        solution.extras["task_label"] = task.label
    return solution


def _worker_run(name: str, spec: Dict[str, object], task: SolveTask) -> Solution:
    instance = attach_instance(name, spec, budget=task.budget)
    return _run_task(instance, task)


# ---------------------------------------------------------------------------
# The batch driver
# ---------------------------------------------------------------------------


def solve_batch(
    instance: PARInstance,
    tasks: Sequence[SolveTask],
    *,
    workers: Optional[int] = None,
) -> List[Solution]:
    """Solve independent tasks over one instance, results in task order.

    ``workers=None`` or ``1`` (or a single task) runs inline — no
    processes, no shared memory, identical code path per task.  With more
    workers the instance is packed once into shared memory and tasks fan
    out over a ``ProcessPoolExecutor`` (``fork`` context where available,
    so workers skip interpreter + import start-up).
    """
    tasks = [t if isinstance(t, SolveTask) else SolveTask(**t) for t in tasks]
    known = set(available_algorithms())
    for t in tasks:
        if t.algorithm not in known:
            raise ConfigurationError(
                f"unknown algorithm {t.algorithm!r}; available: {sorted(known)}"
            )
        if t.budget is not None and not (t.budget > 0):
            raise ConfigurationError(
                f"task budget must be positive, got {t.budget!r}"
            )
    if not tasks:
        return []
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")

    if workers is None or workers <= 1 or len(tasks) == 1:
        # Deadline check between tasks: the inline path inherits this
        # thread's scope directly, so each task also checks inside its
        # own greedy loop; this catches expiry between solves.
        results = []
        for t in tasks:
            _deadline.check()
            results.append(_run_task(instance, t))
        return results

    _deadline.check()
    shared = SharedInstance(instance)
    try:
        try:
            ctx = get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = get_context()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)), mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(_worker_run, shared.name, shared.spec, t) for t in tasks
            ]
            dl = _deadline.current()
            return [_collect(f, dl) for f in futures]
    finally:
        shared.close()


def _collect(future, dl) -> Solution:
    """Await one worker result, honouring the caller's deadline.

    Thread-local deadlines do not cross the process boundary, so the
    parent polls: short result waits interleaved with expiry checks.  An
    expired deadline abandons the remaining futures (the pool's shutdown
    cancels what has not started) and raises with no checkpoint — batch
    tasks are independent whole solves, so there is no mid-batch state
    worth resuming.
    """
    if dl is None:
        return future.result()
    while True:
        if dl.expired():
            raise dl.to_exception()
        rem = dl.remaining()
        step = 0.05 if rem is None else min(0.05, max(rem, 0.001))
        try:
            return future.result(timeout=step)
        except _FuturesTimeout:
            continue
