"""The paper's running example (Figure 1 / Example 4.7).

Seven photos, four pre-defined subsets ("Bikes", "Cats", "Bookshelf",
"Books"), the exact weights, sizes, relevance and similarity values printed
in Figure 1.  The step-by-step trace of Algorithm 2 in Figure 3 is
reproducible from this instance: the initial marginal gains are
``δ_{p1} = 7.83``, ``δ_{p6} = 4.61``, ``δ_{p5} = 0.82`` … and the UC pass
selects ``p1``, then ``p6``, then ``p2``.

Photo ids here are zero-based (``p1`` of the paper is photo id 0).  Sizes
are stored in bytes (1 Mb in the figure = 1,000,000 bytes).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)

__all__ = ["figure1_instance", "MB"]

MB = 1_000_000.0


def _sim_matrix(size: int, pairs: Dict[tuple, float]) -> np.ndarray:
    matrix = np.eye(size)
    for (i, j), s in pairs.items():
        matrix[i, j] = matrix[j, i] = s
    return matrix


def figure1_instance(budget_mb: float = 4.0) -> PARInstance:
    """Build the Figure 1 instance with a configurable budget (default 4 Mb).

    The default budget admits roughly the first three Algorithm 2 picks
    shown in Figure 3 (p1: 1.2 Mb, p6: 1.1 Mb, p2: 0.7 Mb).
    """
    sizes_mb = [1.2, 0.7, 2.1, 0.9, 0.8, 1.1, 1.3]
    photos = [
        Photo(photo_id=i, cost=mb * MB, label=f"p{i + 1}")
        for i, mb in enumerate(sizes_mb)
    ]

    q1 = PredefinedSubset(
        subset_id="Bikes",
        weight=9.0,
        members=[0, 1, 2],
        relevance=[0.5, 0.3, 0.2],
        similarity=DenseSimilarity(
            _sim_matrix(3, {(0, 1): 0.7, (0, 2): 0.8, (1, 2): 0.5})
        ),
    )
    q2 = PredefinedSubset(
        subset_id="Cats",
        weight=1.0,
        members=[3, 4, 5],
        relevance=[0.3, 0.4, 0.3],
        similarity=DenseSimilarity(
            _sim_matrix(3, {(0, 1): 0.7, (0, 2): 0.4, (1, 2): 0.7})
        ),
    )
    q3 = PredefinedSubset(
        subset_id="Bookshelf",
        weight=3.0,
        members=[5],
        relevance=[1.0],
        similarity=DenseSimilarity(np.ones((1, 1))),
    )
    q4 = PredefinedSubset(
        subset_id="Books",
        weight=1.0,
        members=[5, 6],
        relevance=[0.7, 0.3],
        similarity=DenseSimilarity(_sim_matrix(2, {(0, 1): 0.7})),
    )

    return PARInstance(photos, [q1, q2, q3, q4], budget=budget_mb * MB)
