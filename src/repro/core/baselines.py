"""The paper's baseline algorithms (Section 5.2).

* :func:`rand_add` (``RAND-A``) — grow a random selection until the budget
  is exhausted.
* :func:`rand_delete` (``RAND-D``) — start from the full archive and delete
  random photos (never from ``S0``) until the budget is met.
* :func:`greedy_no_redundancy` (``Greedy-NR``) — iterative greedy that
  values a photo only by its own weighted relevance, ignoring the covering
  effect a selected photo has on similar photos (the paper describes this
  as running the Section 3.1 score with a degenerate SIM: each photo covers
  only itself).
* :func:`greedy_non_contextual` (``Greedy-NCS``) — iterative greedy that
  does model covering, but through a single *non-contextual* similarity
  shared by all pre-defined subsets.

Each baseline returns the selected photo ids; quality is always measured
afterwards against the true contextual objective via
:func:`repro.core.objective.score`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.greedy import CB, UC, GreedyRun, lazy_greedy
from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    PredefinedSubset,
)
from repro.errors import ConfigurationError

__all__ = [
    "rand_add",
    "rand_delete",
    "greedy_no_redundancy",
    "greedy_non_contextual",
    "non_contextual_instance",
]


def rand_add(instance: PARInstance, rng: Optional[np.random.Generator] = None) -> List[int]:
    """``RAND-A``: random insertion order, keep whatever fits the budget."""
    rng = rng or np.random.default_rng()
    selection = set(instance.retained)
    spent = instance.cost_of(selection)
    for p in rng.permutation(instance.n):
        p = int(p)
        if p in selection:
            continue
        if spent + instance.costs[p] <= instance.budget * (1 + 1e-12):
            selection.add(p)
            spent += float(instance.costs[p])
    return sorted(selection)


def rand_delete(instance: PARInstance, rng: Optional[np.random.Generator] = None) -> List[int]:
    """``RAND-D``: start from the full archive, delete random photos.

    Photos in the retention set ``S0`` are never deleted.  Deletion stops as
    soon as the remaining cost fits the budget.
    """
    rng = rng or np.random.default_rng()
    selection = set(range(instance.n))
    spent = instance.total_cost()
    order = [int(p) for p in rng.permutation(instance.n) if int(p) not in instance.retained]
    for p in order:
        if spent <= instance.budget * (1 + 1e-12):
            break
        selection.discard(p)
        spent -= float(instance.costs[p])
    if spent > instance.budget * (1 + 1e-12):
        # Only S0 remains and it fits by instance validation.
        selection = set(instance.retained)
    return sorted(selection)


def greedy_no_redundancy(
    instance: PARInstance,
    *,
    cost_aware: bool = False,
) -> List[int]:
    """``Greedy-NR``: greedy on additive per-photo value, no covering effect.

    Under the degenerate SIM (a photo is similar only to itself) the
    objective becomes additive: the value of photo ``p`` is
    ``Σ_{q ∋ p} W(q) · R(q, p)`` and never changes as the selection grows.
    The iterative greedy therefore reduces to scanning photos in decreasing
    value (or value density when ``cost_aware``) and keeping what fits.
    """
    values = np.zeros(instance.n, dtype=np.float64)
    for qi, subset in enumerate(instance.subsets):
        for local, photo_id in enumerate(subset.members):
            values[int(photo_id)] += subset.weight * subset.relevance[local]
    keys = values / instance.costs if cost_aware else values
    order = np.argsort(-keys, kind="stable")

    selection = set(instance.retained)
    spent = instance.cost_of(selection)
    for p in order:
        p = int(p)
        if p in selection:
            continue
        if spent + instance.costs[p] <= instance.budget * (1 + 1e-12):
            selection.add(p)
            spent += float(instance.costs[p])
    return sorted(selection)


def non_contextual_instance(
    instance: PARInstance,
    global_similarity: Optional[np.ndarray] = None,
) -> PARInstance:
    """Replace every subset's SIM with one shared non-contextual similarity.

    The replacement similarity of a member pair is the plain (context-free)
    cosine similarity of their photo embeddings, or a caller-provided global
    ``n × n`` matrix.  Weights, relevance, costs and budget are untouched,
    so the returned instance differs from the original *only* in SIM — the
    isolation the Greedy-NCS baseline needs.
    """
    if global_similarity is None:
        if instance.embeddings is None:
            raise ConfigurationError(
                "Greedy-NCS needs either a global similarity matrix or "
                "instance embeddings to derive one"
            )
        emb = instance.embeddings
        norms = np.linalg.norm(emb, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        unit = emb / norms
        global_similarity = np.clip(unit @ unit.T, 0.0, 1.0)
    else:
        global_similarity = np.asarray(global_similarity, dtype=np.float64)
        if global_similarity.shape != (instance.n, instance.n):
            raise ConfigurationError(
                "global similarity must be an (n, n) matrix over photo ids"
            )

    new_subsets: List[PredefinedSubset] = []
    for subset in instance.subsets:
        ids = subset.members
        sub = global_similarity[np.ix_(ids, ids)].copy()
        sub = (sub + sub.T) / 2.0
        np.fill_diagonal(sub, 1.0)
        new_subsets.append(subset.with_similarity(DenseSimilarity(sub, validate=False)))
    return instance.with_subsets(new_subsets)


def greedy_non_contextual(
    instance: PARInstance,
    global_similarity: Optional[np.ndarray] = None,
    *,
    cost_aware: bool = False,
) -> List[int]:
    """``Greedy-NCS``: iterative greedy against the non-contextual SIM.

    Per Section 5.2 the baseline "in each iteration finds the photo that
    maximizes the gain" — a plain max-gain (unit-cost) greedy, with no
    cost-benefit pass; Section 5.3 attributes much of PHOcus' edge to
    exactly this missing cost-awareness ("algorithms without explicit
    costs are not suited for our problem").  Pass ``cost_aware=True`` to
    study the stronger gain-per-byte variant.

    The greedy decisions are made with the shared similarity; the caller
    scores the returned selection with the true contextual objective.
    """
    surrogate = non_contextual_instance(instance, global_similarity)
    run: GreedyRun = lazy_greedy(surrogate, CB if cost_aware else UC)
    return sorted(run.selection)
