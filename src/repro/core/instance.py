"""The PAR problem model: photos, pre-defined subsets, and instances.

This module implements the formal model of Section 3.1 of the paper.  A
:class:`PARInstance` is the validated tuple ``⟨P, S0, Q, C, W, R, SIM, B⟩``:

* ``P`` — the photo archive, held as a list of :class:`Photo` records whose
  position in the list is the photo id (``0 .. n-1``),
* ``S0`` — the retention set (photos that must be kept, e.g. for legal or
  policy reasons),
* ``Q`` — the pre-defined subsets (landing pages, albums, query results),
  each a :class:`PredefinedSubset` carrying its importance weight ``W(q)``,
  normalised relevance scores ``R(q, ·)`` and contextualised similarity
  ``SIM(q, ·, ·)``,
* ``C`` — per-photo byte costs,
* ``B`` — the storage budget in bytes.

Similarities are stored *per subset* because the paper's SIM function is
contextual: the same pair of photos may have different similarity in
different subsets.  Two interchangeable backends are provided:

* :class:`DenseSimilarity` — an ``m × m`` matrix, the natural form for the
  exact (non-sparsified) instance;
* :class:`SparseSimilarity` — per-row neighbour lists, the form produced by
  τ-sparsification (Section 4.3).  Entries absent from a row are treated as
  similarity 0, exactly matching the paper's "round down to zero" semantics,
  except the mandatory self-similarity of 1 which is always present.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InfeasibleError, ValidationError

__all__ = [
    "Photo",
    "DenseSimilarity",
    "SparseSimilarity",
    "SimilarityBackend",
    "PredefinedSubset",
    "SubsetSpec",
    "PARInstance",
    "IncidenceCSR",
    "build_incidence",
    "normalize_relevance",
]

_SIM_ATOL = 1e-9


def normalize_relevance(raw: Sequence[float]) -> np.ndarray:
    """Normalise raw relevance scores so they sum to 1 (Section 3.1).

    Raises :class:`ValidationError` if any score is negative or the total is
    zero — a subset in which no photo is relevant cannot be scored.
    """
    arr = np.asarray(raw, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError("relevance must be a 1-D sequence")
    if arr.size == 0:
        raise ValidationError("relevance must be non-empty")
    if np.any(arr < 0):
        raise ValidationError("relevance scores must be nonnegative")
    total = float(arr.sum())
    if total <= 0.0:
        raise ValidationError("relevance scores must not all be zero")
    return arr / total


@dataclass(frozen=True)
class Photo:
    """A single photo in the archive.

    Parameters
    ----------
    photo_id:
        Integer identifier; equals the photo's index in ``PARInstance.photos``.
    cost:
        Storage cost in bytes (the paper's ``C(p)``); must be positive.
    label:
        Optional human-readable name (file name, product title, ...).
    metadata:
        Free-form attributes (EXIF fields, product category, quality score).
    """

    photo_id: int
    cost: float
    label: str = ""
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.photo_id < 0:
            raise ValidationError(f"photo_id must be nonnegative, got {self.photo_id}")
        if not (self.cost > 0):
            raise ValidationError(
                f"photo {self.photo_id}: cost must be positive, got {self.cost!r}"
            )


class DenseSimilarity:
    """Contextual similarity stored as a full ``m × m`` matrix.

    The matrix indexes photos by their *local* position within the subset's
    member list.  Values must lie in ``[0, 1]`` with a unit diagonal (the
    similarity of a photo to itself is 1 by definition).
    """

    is_sparse = False

    def __init__(self, matrix: np.ndarray, *, validate: bool = True) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("similarity matrix must be square")
        if validate:
            if np.any(matrix < -_SIM_ATOL) or np.any(matrix > 1.0 + _SIM_ATOL):
                raise ValidationError("similarities must lie in [0, 1]")
            if not np.allclose(np.diag(matrix), 1.0, atol=1e-6):
                raise ValidationError("self-similarity must be 1")
            if not np.allclose(matrix, matrix.T, atol=1e-6):
                # SIM is a normalised measure of how alike two photos are;
                # the incremental evaluators rely on symmetry.
                raise ValidationError("similarity matrix must be symmetric")
            matrix = (matrix + matrix.T) / 2.0
        self.matrix = np.clip(matrix, 0.0, 1.0)
        np.fill_diagonal(self.matrix, 1.0)

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def row(self, local_idx: int) -> np.ndarray:
        """Similarities of member ``local_idx`` to every member (dense row)."""
        return self.matrix[local_idx]

    def pair(self, i: int, j: int) -> float:
        return float(self.matrix[i, j])

    def neighbors(self, local_idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Indices and similarities of the nonzero entries of a row."""
        row = self.matrix[local_idx]
        idx = np.nonzero(row)[0]
        return idx, row[idx]

    def nnz(self) -> int:
        """Number of stored (nonzero) similarity entries."""
        return int(np.count_nonzero(self.matrix))

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, cols, vals)`` of the nonzero entries, row-major.

        Row ``i``'s entries occupy ``cols[indptr[i]:indptr[i+1]]`` in the
        same order :meth:`neighbors` reports them, so flat consumers (the
        incidence kernels) see exactly what the per-row API sees.
        """
        rows, cols = np.nonzero(self.matrix)
        counts = np.bincount(rows, minlength=len(self))
        indptr = np.zeros(len(self) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cols.astype(np.int64, copy=False), self.matrix[rows, cols]

    def sparsified(self, tau: float) -> "SparseSimilarity":
        """Return the τ-sparsified copy: entries below ``tau`` become 0."""
        m = len(self)
        indices: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for i in range(m):
            row = self.matrix[i]
            keep = np.nonzero(row >= tau)[0]
            if i not in keep:
                keep = np.sort(np.append(keep, i))
            indices.append(keep.astype(np.int64))
            values.append(row[keep])
        return SparseSimilarity(m, indices, values, validate=False)


#: Value dtypes a sparse backend may store.  float32 halves the resident
#: footprint of archive-scale instances at ~1e-7 relative similarity error
#: (see docs/million_scale.md for the measured solve impact).
_SPARSE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _check_sparse_dtype(dtype) -> np.dtype:
    dt = np.dtype(np.float64 if dtype is None else dtype)
    if dt not in _SPARSE_DTYPES:
        raise ValidationError(
            f"sparse similarity dtype must be float32 or float64, got {dt}"
        )
    return dt


class SparseSimilarity:
    """Contextual similarity stored natively as a CSR matrix.

    Row ``i`` holds the local indices and similarity values of the photos
    whose similarity to member ``i`` survived sparsification.  The diagonal
    entry ``(i, i) = 1`` is always present so a retained photo covers itself
    perfectly regardless of the threshold.

    Storage is three flat arrays — ``indptr`` (int64, ``size + 1``),
    ``cols`` (int64) and ``vals`` (``dtype``, float64 or float32) — so the
    streamed instance builder (:mod:`repro.scale`) can construct a backend
    directly from verified pair triplets without ever holding a dense
    matrix, and :meth:`csr` / :meth:`neighbors` are zero-copy views.  The
    legacy per-row-list constructor is kept for callers that assemble rows
    incrementally; it concatenates into the same flat layout.
    """

    is_sparse = True

    __slots__ = ("_size", "_indptr", "_cols", "_vals")

    def __init__(
        self,
        size: int,
        indices: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
        *,
        validate: bool = True,
        dtype=None,
    ) -> None:
        dt = _check_sparse_dtype(dtype)
        if len(indices) != size or len(values) != size:
            raise ValidationError("one neighbour list required per member")
        row_idx: List[np.ndarray] = []
        row_val: List[np.ndarray] = []
        for i in range(size):
            idx = np.asarray(indices[i], dtype=np.int64)
            val = np.asarray(values[i], dtype=np.float64)
            if idx.shape != val.shape:
                raise ValidationError(f"row {i}: index/value length mismatch")
            if validate:
                if idx.size and (idx.min() < 0 or idx.max() >= size):
                    raise ValidationError(f"row {i}: neighbour index out of range")
                if np.any(val < -_SIM_ATOL) or np.any(val > 1.0 + _SIM_ATOL):
                    raise ValidationError(f"row {i}: similarity outside [0, 1]")
                if idx.size != np.unique(idx).size:
                    raise ValidationError(f"row {i}: duplicate neighbour index")
            val = np.clip(val, 0.0, 1.0)
            self_pos = np.nonzero(idx == i)[0]
            if self_pos.size == 0:
                idx = np.append(idx, i)
                val = np.append(val, 1.0)
            else:
                val[self_pos[0]] = 1.0
            row_idx.append(idx)
            row_val.append(val)
        lens = np.fromiter((idx.size for idx in row_idx), dtype=np.int64, count=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(lens, out=indptr[1:])
        if size:
            cols = np.concatenate(row_idx)
            vals = np.concatenate(row_val)
        else:
            cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
        self._size = size
        self._indptr = indptr
        self._cols = cols
        self._vals = vals.astype(dt, copy=False)

    # ------------------------------------------------------- constructors

    @classmethod
    def from_csr(
        cls,
        size: int,
        indptr: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        dtype=None,
        validate: bool = True,
    ) -> "SparseSimilarity":
        """Adopt ready-made CSR arrays (no per-row Python, no dense detour).

        Rows must already contain their diagonal entry with value 1 — this
        is the trusted fast path for builders that guarantee the invariant
        (``validate=True`` re-checks it vectorised, still O(nnz)).
        """
        dt = _check_sparse_dtype(dtype if dtype is not None else vals.dtype)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=dt)
        if indptr.shape != (size + 1,) or int(indptr[0]) != 0:
            raise ValidationError("malformed CSR indptr")
        if cols.shape != vals.shape or cols.ndim != 1:
            raise ValidationError("CSR cols/vals length mismatch")
        if int(indptr[-1]) != cols.size or np.any(np.diff(indptr) < 0):
            raise ValidationError("CSR indptr does not span the entry arrays")
        if validate:
            if cols.size and (cols.min() < 0 or cols.max() >= size):
                raise ValidationError("CSR neighbour index out of range")
            if np.any(vals < -_SIM_ATOL) or np.any(vals > 1.0 + _SIM_ATOL):
                raise ValidationError("CSR similarity outside [0, 1]")
            rows = np.repeat(np.arange(size, dtype=np.int64), np.diff(indptr))
            diag = cols == rows
            if int(diag.sum()) != size:
                raise ValidationError("every CSR row must hold its diagonal entry")
            if not np.all(vals[diag] == 1.0):
                raise ValidationError("CSR self-similarity must be 1")
        obj = cls.__new__(cls)
        obj._size = size
        obj._indptr = indptr
        obj._cols = cols
        obj._vals = vals
        return obj

    @classmethod
    def from_pairs(
        cls,
        size: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        dtype=None,
        validate: bool = True,
    ) -> "SparseSimilarity":
        """Build from unique undirected off-diagonal pairs (the LSH output).

        Each ``(rows[k], cols[k])`` pair contributes the symmetric entries
        ``(i, j)`` and ``(j, i)``; the unit diagonal is added for every row.
        Entries land in canonical order — per row, ascending column index
        with the diagonal in its sorted position — matching the layout of
        :meth:`DenseSimilarity.sparsified`, so the fused streamed build and
        the dense-then-threshold path accumulate floats identically.
        """
        dt = _check_sparse_dtype(dtype)
        ii = np.asarray(rows, dtype=np.int64).ravel()
        jj = np.asarray(cols, dtype=np.int64).ravel()
        vv = np.asarray(vals, dtype=np.float64).ravel()
        if not (ii.size == jj.size == vv.size):
            raise ValidationError("pair arrays must have equal length")
        if validate and ii.size:
            if min(ii.min(), jj.min()) < 0 or max(ii.max(), jj.max()) >= size:
                raise ValidationError("pair index out of range")
            if np.any(ii == jj):
                raise ValidationError("pairs must be off-diagonal")
            if np.any(vv < -_SIM_ATOL) or np.any(vv > 1.0 + _SIM_ATOL):
                raise ValidationError("pair similarity outside [0, 1]")
        vv = np.clip(vv, 0.0, 1.0)
        diag = np.arange(size, dtype=np.int64)
        all_rows = np.concatenate([ii, jj, diag])
        all_cols = np.concatenate([jj, ii, diag])
        all_vals = np.concatenate([vv, vv, np.ones(size, dtype=np.float64)])
        order = np.lexsort((all_cols, all_rows))
        all_rows = all_rows[order]
        all_cols = all_cols[order]
        if validate and all_rows.size > 1:
            dup = (all_rows[1:] == all_rows[:-1]) & (all_cols[1:] == all_cols[:-1])
            if np.any(dup):
                raise ValidationError("duplicate undirected pair")
        counts = np.bincount(all_rows, minlength=size)
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls.from_csr(
            size, indptr, all_cols, all_vals[order], dtype=dt, validate=False
        )

    # ------------------------------------------------------------- growth

    def append_rows(
        self,
        k: int,
        rows: np.ndarray = (),
        cols: np.ndarray = (),
        vals: np.ndarray = (),
        *,
        validate: bool = True,
    ) -> "SparseSimilarity":
        """Grow by ``k`` members, given pairs that touch the new range.

        ``(rows[t], cols[t], vals[t])`` are unique undirected off-diagonal
        pairs with **at least one endpoint ≥ len(self)** — the delta an LSH
        re-bucketing of only the new photos produces.  Old↔old pairs are
        rejected: they would interleave inside existing rows and the result
        could no longer reuse the stored layout.

        Because every new column index is ``≥ len(self)`` and therefore
        larger than any column already stored, additions to an existing row
        land strictly *after* its current entries, so the old CSR region is
        copied once (no re-sort, no per-row Python) and rows without
        additions are byte-for-byte identical slices.  The result is
        bit-identical to :meth:`from_pairs` rebuilt from the union of old
        and new pairs — delta ingestion and a from-scratch build agree
        exactly.
        """
        if k < 0:
            raise ValidationError("append_rows: k must be non-negative")
        n = self._size
        total = n + k
        dt = self._vals.dtype
        ii = np.asarray(rows, dtype=np.int64).ravel()
        jj = np.asarray(cols, dtype=np.int64).ravel()
        vv = np.asarray(vals, dtype=np.float64).ravel()
        if not (ii.size == jj.size == vv.size):
            raise ValidationError("pair arrays must have equal length")
        if k == 0 and ii.size == 0:
            return self
        if validate and ii.size:
            if min(ii.min(), jj.min()) < 0 or max(ii.max(), jj.max()) >= total:
                raise ValidationError("pair index out of range")
            if np.any(ii == jj):
                raise ValidationError("pairs must be off-diagonal")
            if np.any((ii < n) & (jj < n)):
                raise ValidationError(
                    "append_rows pairs must touch the appended range; "
                    "old-old pairs require a from_pairs rebuild"
                )
            if np.any(vv < -_SIM_ATOL) or np.any(vv > 1.0 + _SIM_ATOL):
                raise ValidationError("pair similarity outside [0, 1]")
        vv = np.clip(vv, 0.0, 1.0).astype(dt, copy=False)
        # Directed entries: each undirected pair contributes both (i, j)
        # and (j, i); the new rows additionally hold their unit diagonal.
        dir_r = np.concatenate([ii, jj])
        dir_c = np.concatenate([jj, ii])
        dir_v = np.concatenate([vv, vv])
        old_side = dir_r < n
        # --- additions to existing rows (columns all ≥ n: append-only) ---
        add_r = dir_r[old_side]
        add_c = dir_c[old_side]
        add_v = dir_v[old_side]
        order = np.lexsort((add_c, add_r))
        add_r = add_r[order]
        add_c = add_c[order]
        add_v = add_v[order]
        add_counts = np.bincount(add_r, minlength=n)[:n]
        add_prefix = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(add_counts, out=add_prefix[1:])
        # --- entries of the appended rows (diagonal included) -----------
        diag = np.arange(n, total, dtype=np.int64)
        new_r = np.concatenate([dir_r[~old_side], diag])
        new_c = np.concatenate([dir_c[~old_side], diag])
        new_v = np.concatenate([dir_v[~old_side], np.ones(k, dtype=dt)])
        order = np.lexsort((new_c, new_r))
        new_r = new_r[order]
        new_c = new_c[order]
        new_v = new_v[order]
        if validate:
            for rr, cc in ((add_r, add_c), (new_r, new_c)):
                if rr.size > 1:
                    dup = (rr[1:] == rr[:-1]) & (cc[1:] == cc[:-1])
                    if np.any(dup):
                        raise ValidationError("duplicate undirected pair")
        new_counts = np.bincount(new_r - n, minlength=k)[:k] if k else np.zeros(
            0, dtype=np.int64
        )
        # --- assemble ----------------------------------------------------
        old_nnz = self._cols.size
        old_lens = np.diff(self._indptr)
        nnz = old_nnz + add_r.size + new_r.size
        out_cols = np.empty(nnz, dtype=np.int64)
        out_vals = np.empty(nnz, dtype=dt)
        # Old entries of row i shift right by the additions to rows < i.
        dest_old = np.arange(old_nnz, dtype=np.int64) + np.repeat(
            add_prefix[:n], old_lens
        )
        out_cols[dest_old] = self._cols
        out_vals[dest_old] = self._vals
        # The t-th sorted addition (row r) lands right after row r's old
        # entries plus the additions to earlier rows already placed before
        # it: old_indptr[r + 1] + t.
        if add_r.size:
            dest_add = self._indptr[add_r + 1] + np.arange(
                add_r.size, dtype=np.int64
            )
            out_cols[dest_add] = add_c
            out_vals[dest_add] = add_v
        base = old_nnz + add_r.size
        out_cols[base:] = new_c
        out_vals[base:] = new_v
        indptr = np.empty(total + 1, dtype=np.int64)
        indptr[: n + 1] = self._indptr + add_prefix
        if k:
            np.cumsum(new_counts, out=indptr[n + 1 :])
            indptr[n + 1 :] += base
        return SparseSimilarity.from_csr(
            total, indptr, out_cols, out_vals, dtype=dt, validate=False
        )

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return self._size

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the similarity values (float64 or float32)."""
        return self._vals.dtype

    def astype(self, dtype) -> "SparseSimilarity":
        """Copy with values cast to ``dtype`` (indices are shared)."""
        dt = _check_sparse_dtype(dtype)
        if dt == self._vals.dtype:
            return self
        vals = self._vals.astype(dt)
        if dt == np.float32:
            # Rounding may nudge a value past 1; the invariant wins.
            np.clip(vals, 0.0, 1.0, out=vals)
            vals[self._cols == np.repeat(np.arange(self._size), np.diff(self._indptr))] = 1.0
        return SparseSimilarity.from_csr(
            self._size, self._indptr, self._cols, vals, dtype=dt, validate=False
        )

    def row(self, local_idx: int) -> np.ndarray:
        """Materialise a dense row (zeros where no entry is stored).

        O(size) allocation per call — never use in a per-member hot loop;
        route through :meth:`neighbors`, which is a zero-copy slice.
        """
        dense = np.zeros(self._size, dtype=np.float64)
        s, e = self._indptr[local_idx], self._indptr[local_idx + 1]
        dense[self._cols[s:e]] = self._vals[s:e]
        return dense

    def pair(self, i: int, j: int) -> float:
        s, e = self._indptr[i], self._indptr[i + 1]
        pos = np.nonzero(self._cols[s:e] == j)[0]
        return float(self._vals[s + pos[0]]) if pos.size else 0.0

    def neighbors(self, local_idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(indices, values)`` views of one stored row."""
        s, e = self._indptr[local_idx], self._indptr[local_idx + 1]
        return self._cols[s:e], self._vals[s:e]

    def nnz(self) -> int:
        return int(self._cols.size)

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, cols, vals)`` of the stored entries, row-major.

        Same contract as :meth:`DenseSimilarity.csr` — and zero-copy: the
        returned arrays are the live backing store, so treat them as
        read-only.
        """
        return self._indptr, self._cols, self._vals


SimilarityBackend = Union[DenseSimilarity, SparseSimilarity]


class IncidenceCSR:
    """Flat photo→(subset, neighbour) incidence arrays (the kernel layout).

    The per-subset coverage vectors ``best[q]`` are laid out back to back
    in one *slot space* of length ``total_slots`` (subset ``qi`` owns slots
    ``subset_offsets[qi] : subset_offsets[qi+1]``).  For every photo ``p``
    and every subset containing it, the neighbour list of ``p``'s local row
    is stored contiguously as

    * ``slots`` — the neighbour's global slot,
    * ``sims`` — ``SIM(q, p, neighbour)``,
    * ``wrel`` — ``W(q) · R(q, neighbour)`` (pre-gathered),

    grouped first by photo (``entry_indptr``), then by membership inside
    the photo in ascending subset order (``photo_member_indptr`` into
    ``member_entry_indptr``).  Membership order and per-row entry order
    match ``PARInstance.membership`` / ``similarity.neighbors`` exactly,
    which is what lets :class:`repro.core.objective.CoverageState`'s kernel
    backend reproduce the reference float accumulation bit for bit.
    """

    __slots__ = (
        "subset_offsets",
        "photo_member_indptr",
        "member_entry_indptr",
        "entry_indptr",
        "slots",
        "sims",
        "wrel",
        "total_slots",
    )

    def __init__(
        self,
        subset_offsets: np.ndarray,
        photo_member_indptr: np.ndarray,
        member_entry_indptr: np.ndarray,
        entry_indptr: np.ndarray,
        slots: np.ndarray,
        sims: np.ndarray,
        wrel: np.ndarray,
    ) -> None:
        self.subset_offsets = subset_offsets
        self.photo_member_indptr = photo_member_indptr
        self.member_entry_indptr = member_entry_indptr
        self.entry_indptr = entry_indptr
        self.slots = slots
        self.sims = sims
        self.wrel = wrel
        self.total_slots = int(subset_offsets[-1]) if subset_offsets.size else 0

    @property
    def nnz(self) -> int:
        return int(self.slots.size)


def build_incidence(subsets: Sequence[PredefinedSubset], n: int) -> IncidenceCSR:
    """Build the flat incidence CSR for ``n`` photos over ``subsets``.

    Fully vectorised (O(nnz) numpy, no per-entry Python): each subset
    contributes its similarity CSR; entries are then permuted from
    subset-major to photo-major order with a gather.
    """
    n_subsets = len(subsets)
    sizes = np.fromiter((len(q) for q in subsets), dtype=np.int64, count=n_subsets)
    subset_offsets = np.zeros(n_subsets + 1, dtype=np.int64)
    np.cumsum(sizes, out=subset_offsets[1:])

    if n_subsets == 0:
        zero = np.zeros(0, dtype=np.int64)
        return IncidenceCSR(
            subset_offsets,
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(n + 1, dtype=np.int64),
            zero,
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
        )

    if n_subsets == 1 and len(subsets[0]) == n:
        q = subsets[0]
        members = np.asarray(q.members, dtype=np.int64)
        if members.size == n and np.array_equal(
            members, np.arange(n, dtype=np.int64)
        ):
            # Archive-wide single-subset instances (the streamed/live
            # builds): local ids are global ids, the photo-major
            # permutation is the identity, and the incidence is the
            # similarity CSR itself — skip the O(nnz) gather entirely.
            indptr, cols, vals = q.similarity.csr()
            indptr = np.asarray(indptr, dtype=np.int64)
            slots = np.asarray(cols, dtype=np.int64)
            return IncidenceCSR(
                subset_offsets,
                np.arange(n + 1, dtype=np.int64),
                indptr,
                indptr,
                slots,
                np.asarray(vals, dtype=np.float64),
                (q.weight * q.relevance)[slots],
            )

    # Subset-major pass: concatenate every subset's row CSR, converting
    # local columns to global slots and gathering W(q)·R(q, col) per entry.
    slot_parts, val_parts, wrel_parts, len_parts = [], [], [], []
    mem_photo_parts = []
    for qi, q in enumerate(subsets):
        indptr, cols, vals = q.similarity.csr()
        slot_parts.append(cols + subset_offsets[qi])
        val_parts.append(vals)
        wrel_parts.append((q.weight * q.relevance)[cols])
        len_parts.append(indptr[1:] - indptr[:-1])
        mem_photo_parts.append(q.members)

    all_slots = np.concatenate(slot_parts)
    all_vals = np.concatenate(val_parts)
    all_wrel = np.concatenate(wrel_parts)
    mem_len = np.concatenate(len_parts)
    mem_photo = np.concatenate(mem_photo_parts)

    src_start = np.zeros(mem_len.size + 1, dtype=np.int64)
    np.cumsum(mem_len, out=src_start[1:])
    src_start = src_start[:-1]

    # Photo-major permutation.  A stable sort keeps memberships of the
    # same photo in ascending subset order — the exact iteration order of
    # PARInstance.membership, on which bit-identical accumulation rests.
    order = np.argsort(mem_photo, kind="stable")
    counts = np.bincount(mem_photo, minlength=n)
    photo_member_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=photo_member_indptr[1:])

    sorted_len = mem_len[order]
    member_entry_indptr = np.zeros(order.size + 1, dtype=np.int64)
    np.cumsum(sorted_len, out=member_entry_indptr[1:])
    nnz = int(member_entry_indptr[-1])

    within = np.arange(nnz, dtype=np.int64) - np.repeat(
        member_entry_indptr[:-1], sorted_len
    )
    src_idx = np.repeat(src_start[order], sorted_len) + within

    return IncidenceCSR(
        subset_offsets,
        photo_member_indptr,
        member_entry_indptr,
        member_entry_indptr[photo_member_indptr],
        all_slots[src_idx],
        all_vals[src_idx],
        all_wrel[src_idx],
    )


class PredefinedSubset:
    """A pre-defined subset ``q ∈ Q`` with weight, relevance and similarity.

    Parameters
    ----------
    subset_id:
        Stable identifier, e.g. the landing-page title or the query string.
    weight:
        Importance ``W(q) > 0``.
    members:
        Photo ids belonging to the subset, in local-index order.
    relevance:
        ``R(q, p)`` per member.  Normalised to sum to 1 on construction
        unless ``normalize=False`` is passed (in which case the values must
        already sum to 1).
    similarity:
        A :class:`DenseSimilarity` or :class:`SparseSimilarity` over the
        members, indexed by local position.
    """

    __slots__ = ("subset_id", "weight", "members", "relevance", "similarity", "_local")

    def __init__(
        self,
        subset_id: str,
        weight: float,
        members: Sequence[int],
        relevance: Sequence[float],
        similarity: SimilarityBackend,
        *,
        normalize: bool = True,
    ) -> None:
        if not (weight > 0):
            raise ValidationError(f"subset {subset_id!r}: weight must be positive")
        member_arr = np.asarray(members, dtype=np.int64)
        if member_arr.ndim != 1 or member_arr.size == 0:
            raise ValidationError(f"subset {subset_id!r}: members must be non-empty")
        if np.unique(member_arr).size != member_arr.size:
            raise ValidationError(f"subset {subset_id!r}: duplicate member")
        if normalize:
            rel = normalize_relevance(relevance)
        else:
            rel = np.asarray(relevance, dtype=np.float64)
            if np.any(rel < 0):
                raise ValidationError(f"subset {subset_id!r}: negative relevance")
            if abs(float(rel.sum()) - 1.0) > 1e-6:
                raise ValidationError(
                    f"subset {subset_id!r}: relevance must sum to 1 "
                    f"(got {float(rel.sum()):.6f})"
                )
        if rel.size != member_arr.size:
            raise ValidationError(
                f"subset {subset_id!r}: relevance length {rel.size} != "
                f"member count {member_arr.size}"
            )
        if len(similarity) != member_arr.size:
            raise ValidationError(
                f"subset {subset_id!r}: similarity size {len(similarity)} != "
                f"member count {member_arr.size}"
            )
        self.subset_id = subset_id
        self.weight = float(weight)
        self.members = member_arr
        self.relevance = rel
        self.similarity = similarity
        self._local: Dict[int, int] = {int(p): i for i, p in enumerate(member_arr)}

    def __len__(self) -> int:
        return self.members.size

    def __contains__(self, photo_id: int) -> bool:
        return int(photo_id) in self._local

    def local_index(self, photo_id: int) -> int:
        """Local position of ``photo_id`` inside this subset."""
        try:
            return self._local[int(photo_id)]
        except KeyError:
            raise ValidationError(
                f"photo {photo_id} is not a member of subset {self.subset_id!r}"
            ) from None

    def sim(self, p1: int, p2: int) -> float:
        """``SIM(q, p1, p2)`` by *photo id* (0 if either is not a member)."""
        i = self._local.get(int(p1))
        j = self._local.get(int(p2))
        if i is None or j is None:
            return 0.0
        return self.similarity.pair(i, j)

    def with_similarity(self, similarity: SimilarityBackend) -> "PredefinedSubset":
        """Copy of this subset with a replaced similarity backend."""
        return PredefinedSubset(
            self.subset_id,
            self.weight,
            self.members,
            self.relevance,
            similarity,
            normalize=False,
        )


@dataclass
class SubsetSpec:
    """Raw, pre-validation description of a subset (builder input).

    ``relevance`` may be un-normalised; ``similarity`` may be omitted when
    the instance builder is given photo embeddings and a similarity function.
    """

    subset_id: str
    weight: float
    members: Sequence[int]
    relevance: Sequence[float]
    similarity: Optional[np.ndarray] = None


class PARInstance:
    """A fully validated Photo Archive Reduction instance.

    Provides the inputs of Section 3.1 plus the derived *membership index*
    (for each photo, the subsets containing it and its local index there),
    which every solver uses to evaluate marginal gains efficiently.
    """

    def __init__(
        self,
        photos: Sequence[Photo],
        subsets: Sequence[PredefinedSubset],
        budget: float,
        retained: Iterable[int] = (),
        embeddings: Optional[np.ndarray] = None,
        *,
        incidence: Optional[IncidenceCSR] = None,
        variants: Optional[object] = None,
    ) -> None:
        self.photos: List[Photo] = list(photos)
        self.n = len(self.photos)
        if self.n == 0:
            raise ValidationError("instance must contain at least one photo")
        for idx, photo in enumerate(self.photos):
            if photo.photo_id != idx:
                raise ValidationError(
                    f"photo at position {idx} has photo_id {photo.photo_id}; "
                    "photo_id must equal list position"
                )
        self.costs = np.array([p.cost for p in self.photos], dtype=np.float64)
        if not (budget > 0):
            raise ValidationError(f"budget must be positive, got {budget!r}")
        self.budget = float(budget)

        self.subsets: List[PredefinedSubset] = list(subsets)
        seen_ids = set()
        for q in self.subsets:
            if q.subset_id in seen_ids:
                raise ValidationError(f"duplicate subset id {q.subset_id!r}")
            seen_ids.add(q.subset_id)
            if q.members.size and (q.members.min() < 0 or q.members.max() >= self.n):
                raise ValidationError(
                    f"subset {q.subset_id!r} references a photo outside 0..{self.n - 1}"
                )

        self.retained = frozenset(int(p) for p in retained)
        for p in self.retained:
            if p < 0 or p >= self.n:
                raise ValidationError(f"retained photo {p} outside 0..{self.n - 1}")
        retained_cost = float(self.costs[list(self.retained)].sum()) if self.retained else 0.0
        if retained_cost > self.budget * (1 + 1e-12):
            raise InfeasibleError(
                f"retention set costs {retained_cost:.1f} bytes, which exceeds "
                f"the budget of {self.budget:.1f} bytes"
            )

        if embeddings is not None:
            embeddings = np.asarray(embeddings, dtype=np.float64)
            if embeddings.ndim != 2 or embeddings.shape[0] != self.n:
                raise ValidationError(
                    "embeddings must be an (n_photos, dim) array when provided"
                )
        self.embeddings = embeddings

        # Optional per-photo variant menus (a repro.fidelity VariantCatalog,
        # held duck-typed so core carries no fidelity import).  Archives
        # uploaded with a catalog solve multi-fidelity by default.
        if variants is not None:
            n_photos = getattr(variants, "n_photos", None)
            if n_photos != self.n:
                raise ValidationError(
                    f"variant catalog covers {n_photos} photos, "
                    f"instance has {self.n}"
                )
        self.variants = variants

        # Membership index: photo id -> [(subset index, local index), ...].
        self.membership: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
        for qi, q in enumerate(self.subsets):
            for local, photo_id in enumerate(q.members):
                self.membership[int(photo_id)].append((qi, local))

        # Flat incidence CSR: the hot-path layout every gain/add/all_gains
        # kernel runs on.  ``incidence`` is an internal fast path for
        # callers that copy an instance without changing subsets (e.g.
        # with_budget) — the arrays only depend on subsets and n.
        self.incidence: IncidenceCSR = (
            incidence if incidence is not None else build_incidence(self.subsets, self.n)
        )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    def cost_of(self, selection: Iterable[int]) -> float:
        """Total byte cost ``C(S)`` of a selection of photo ids."""
        ids = list(selection)
        return float(self.costs[ids].sum()) if ids else 0.0

    def total_cost(self) -> float:
        """Cost of retaining the entire archive."""
        return float(self.costs.sum())

    def feasible(self, selection: Iterable[int]) -> bool:
        """Whether a selection respects both the budget and ``S0 ⊆ S``."""
        sel = set(int(p) for p in selection)
        if not self.retained.issubset(sel):
            return False
        return self.cost_of(sel) <= self.budget * (1 + 1e-12)

    def is_sparse(self) -> bool:
        """True when every subset uses a sparse similarity backend."""
        return all(q.similarity.is_sparse for q in self.subsets)

    def similarity_nnz(self) -> int:
        """Total stored similarity entries across all subsets."""
        return sum(q.similarity.nnz() for q in self.subsets)

    def with_subsets(self, subsets: Sequence[PredefinedSubset]) -> "PARInstance":
        """Copy of this instance with the subset list replaced."""
        return PARInstance(
            self.photos,
            subsets,
            self.budget,
            self.retained,
            embeddings=self.embeddings,
            variants=self.variants,
        )

    def with_budget(self, budget: float) -> "PARInstance":
        """Copy of this instance with a different budget."""
        return PARInstance(
            self.photos,
            self.subsets,
            budget,
            self.retained,
            embeddings=self.embeddings,
            incidence=self.incidence,
            variants=self.variants,
        )

    def with_adjusted_weights(
        self,
        factors: Mapping[str, float],
        *,
        strict: bool = True,
    ) -> "PARInstance":
        """Copy with some subsets' importance weights rescaled.

        Section 5.1: "The weights for subsets derived by all methods may
        be adjusted using a dedicated UI."  ``factors`` maps subset ids to
        positive multipliers; unmentioned subsets keep their weight.  With
        ``strict`` (default) an unknown subset id raises — silently
        ignoring an analyst's adjustment would be worse than failing.
        """
        known = {q.subset_id for q in self.subsets}
        unknown = set(factors) - known
        if unknown and strict:
            raise ValidationError(
                f"weight adjustment references unknown subsets: {sorted(unknown)[:5]}"
            )
        for subset_id, factor in factors.items():
            if not (factor > 0):
                raise ValidationError(
                    f"weight factor for {subset_id!r} must be positive, got {factor!r}"
                )
        new_subsets = [
            PredefinedSubset(
                q.subset_id,
                q.weight * float(factors.get(q.subset_id, 1.0)),
                q.members,
                q.relevance,
                q.similarity,
                normalize=False,
            )
            for q in self.subsets
        ]
        return self.with_subsets(new_subsets)

    def restricted(
        self,
        photo_ids: Sequence[int],
        budget: Optional[float] = None,
    ) -> "PARInstance":
        """Sub-instance over a subset of the photos (ids are remapped).

        Photos are renumbered ``0 .. k-1`` in the order given.  Each
        pre-defined subset is intersected with the sample (its similarity
        matrix sliced, its relevance renormalised); subsets left empty are
        dropped.  Retained photos outside the sample are dropped from
        ``S0``.  Used by the user-study benches, which evaluate methods on
        ~100-photo samples the way Section 5.4 does.
        """
        ids = [int(p) for p in photo_ids]
        if len(set(ids)) != len(ids):
            raise ValidationError("restricted(): duplicate photo ids")
        remap = {old: new for new, old in enumerate(ids)}
        photos = [
            dataclasses.replace(self.photos[old], photo_id=new)
            for new, old in enumerate(ids)
        ]
        subsets: List[PredefinedSubset] = []
        for q in self.subsets:
            kept_locals = [j for j, p in enumerate(q.members) if int(p) in remap]
            if not kept_locals:
                continue
            rel = q.relevance[kept_locals]
            if float(rel.sum()) <= 0:
                continue
            members = [remap[int(q.members[j])] for j in kept_locals]
            if q.similarity.is_sparse:
                local_remap = {old: new for new, old in enumerate(kept_locals)}
                indices, values = [], []
                for j in kept_locals:
                    idx, val = q.similarity.neighbors(j)
                    keep = [k for k, x in enumerate(idx) if int(x) in local_remap]
                    indices.append(
                        np.asarray([local_remap[int(idx[k])] for k in keep], dtype=np.int64)
                    )
                    values.append(val[keep])
                backend: SimilarityBackend = SparseSimilarity(
                    len(kept_locals), indices, values, validate=False
                )
            else:
                matrix = q.similarity.matrix[np.ix_(kept_locals, kept_locals)]
                backend = DenseSimilarity(matrix, validate=False)
            subsets.append(
                PredefinedSubset(q.subset_id, q.weight, members, rel, backend)
            )
        if not subsets:
            raise ValidationError("restriction removed every subset")
        retained = [remap[p] for p in self.retained if p in remap]
        embeddings = self.embeddings[ids] if self.embeddings is not None else None
        return PARInstance(
            photos,
            subsets,
            self.budget if budget is None else budget,
            retained,
            embeddings=embeddings,
        )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        photos: Sequence[Photo],
        subset_specs: Sequence[SubsetSpec],
        budget: float,
        retained: Iterable[int] = (),
        embeddings: Optional[np.ndarray] = None,
        similarity_fn=None,
    ) -> "PARInstance":
        """Build an instance from raw specs, deriving similarities if needed.

        For specs without an explicit matrix, ``similarity_fn(spec, emb)`` is
        called with the spec and the member-row slice of ``embeddings`` and
        must return an ``m × m`` matrix; if ``similarity_fn`` is omitted the
        cosine similarity of the member embeddings (clipped to ``[0, 1]``)
        is used.
        """
        subsets: List[PredefinedSubset] = []
        for spec in subset_specs:
            if spec.similarity is not None:
                backend: SimilarityBackend = DenseSimilarity(spec.similarity)
            else:
                if embeddings is None:
                    raise ValidationError(
                        f"subset {spec.subset_id!r} has no similarity matrix and "
                        "no embeddings were provided to derive one"
                    )
                member_emb = np.asarray(embeddings, dtype=np.float64)[
                    np.asarray(spec.members, dtype=np.int64)
                ]
                if similarity_fn is not None:
                    matrix = similarity_fn(spec, member_emb)
                else:
                    matrix = _cosine_similarity_matrix(member_emb)
                backend = DenseSimilarity(matrix)
            subsets.append(
                PredefinedSubset(
                    spec.subset_id,
                    spec.weight,
                    spec.members,
                    spec.relevance,
                    backend,
                )
            )
        return cls(photos, subsets, budget, retained, embeddings=embeddings)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PARInstance(n={self.n}, subsets={len(self.subsets)}, "
            f"budget={self.budget:.0f}, retained={len(self.retained)})"
        )


def _cosine_similarity_matrix(embeddings: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity, clipped into [0, 1] with a unit diagonal."""
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    unit = embeddings / norms
    matrix = np.clip(unit @ unit.T, 0.0, 1.0)
    np.fill_diagonal(matrix, 1.0)
    return matrix
