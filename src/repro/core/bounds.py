"""A-posteriori performance bounds (Sections 4.2 and 4.3).

Two families of certificates:

* :func:`online_bound` / :func:`performance_certificate` — the online bound
  of Leskovec et al. [30].  For a monotone submodular objective under a
  knapsack budget ``B``, any optimum ``O`` satisfies
  ``G(O) ≤ G(S) + Σ_{p ∈ O \\ S} δ_p`` where ``δ_p`` is the marginal gain of
  ``p`` at ``S``; the right-hand side is bounded by packing the gains into
  the budget fractionally (a fractional-knapsack relaxation).  Dividing the
  achieved value by this bound yields a *data-dependent* approximation
  ratio that in practice far exceeds the a-priori ``(1 − 1/e)/2`` guarantee
  — the paper leverages exactly this to justify the scalable algorithm.

* :func:`sparsification_bound` — Theorem 4.8.  For a τ-sparsified instance,
  if a witness set ``S`` of cost at most ``B`` τ-covers an ``α`` fraction of
  the total right-node weight ``W_R`` in the GFL formulation, then the
  sparsified optimum is at least ``1 / (1 + 1/α)`` of the true optimum.
  The witness is produced by solving Budgeted Maximum Coverage over the
  τ-neighbourhood structure (Section 4.3 notes this sub-problem is much
  faster than PAR itself since no nearest-neighbour evaluation is needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.budgeted_coverage import (
    CoverageProblem,
    CoverageSolution,
    greedy_budgeted_coverage,
)
from repro.core.instance import PARInstance
from repro.core.objective import CoverageState

__all__ = [
    "online_bound",
    "performance_certificate",
    "SparsificationBound",
    "sparsification_bound",
]


def online_bound(
    instance: PARInstance,
    selection: Iterable[int],
    *,
    state: Optional[CoverageState] = None,
) -> float:
    """Upper bound on the PAR optimum given an evaluated solution ``S``.

    Computes ``G(S)`` plus the fractional-knapsack packing of the current
    marginal gains into the full budget ``B``.  Valid for *any* ``S`` — the
    bound certifies the optimum, not the solution.

    ``state`` may carry an already-built :class:`CoverageState` whose
    selection is exactly ``S`` — callers that just finished a greedy pass
    (or a checkpoint replay) reuse it instead of replaying the whole
    selection a second time.  The bound is identical either way: a fresh
    state replays the same add order into the same floats.
    """
    if state is None:
        state = CoverageState(instance, selection)
    costs = instance.costs
    gains = state.all_gains()
    keep = np.nonzero(
        (gains > 0) & (costs <= instance.budget * (1 + 1e-12))
    )[0]
    kept_gains = gains[keep]
    kept_costs = costs[keep]
    # Descending (density, gain, cost) — the same ordering the former
    # sorted tuple list produced, without materialising Python tuples.
    order = np.lexsort(
        (-kept_costs, -kept_gains, -(kept_gains / kept_costs))
    )
    bound = state.value
    budget = instance.budget
    for i in order:
        if budget <= 0:
            break
        gain = float(kept_gains[i])
        cost = float(kept_costs[i])
        if cost <= budget:
            bound += gain
            budget -= cost
        else:
            bound += gain * (budget / cost)
            budget = 0.0
    return bound


def performance_certificate(
    instance: PARInstance, selection: Iterable[int]
) -> Tuple[float, float]:
    """Return ``(achieved_value, ratio_lower_bound)`` for a solution.

    ``ratio_lower_bound = G(S) / online_bound(S)`` certifies that ``S`` is
    at least that fraction of optimal.  The paper reports these ratios far
    above the worst-case ``(1 − 1/e)/2 ≈ 0.316``.
    """
    selection = list(selection)
    state = CoverageState(instance, selection)
    value = state.value
    bound = online_bound(instance, selection)
    ratio = 1.0 if bound <= 0 else min(1.0, value / bound)
    return value, ratio


@dataclass
class SparsificationBound:
    """Theorem 4.8 certificate for a τ-sparsified instance.

    ``factor = α / (1 + α)`` lower-bounds the ratio between the sparsified
    optimum and the true optimum.  ``witness`` is the photo set realising
    coverage fraction ``α`` of the right-node weight ``W_R``.
    """

    tau: float
    alpha: float
    factor: float
    witness: List[int]
    covered_weight: float
    total_weight: float


def sparsification_bound(
    instance: PARInstance,
    tau: float,
    *,
    budget: Optional[float] = None,
) -> SparsificationBound:
    """Compute the data-dependent bound of Theorem 4.8 for threshold τ.

    Builds the GFL right side — one item per ``(q, p)`` membership pair with
    weight ``W(q) · R(q, p)`` — and, for each photo, the set of items whose
    τ-surviving similarity to the photo is at least τ.  A Budgeted Maximum
    Coverage witness over this structure gives ``α`` and hence the bound
    ``1 / (1 + 1/α)``.

    The instance may be either dense (τ applied on the fly) or already
    τ-sparsified (stored neighbours used directly).
    """
    if not (0.0 <= tau <= 1.0):
        raise ValueError(f"tau must lie in [0, 1], got {tau}")
    budget = instance.budget if budget is None else float(budget)

    item_weights: List[float] = []
    # covers[p] accumulates right-item indices covered by photo p.
    covers: List[List[int]] = [[] for _ in range(instance.n)]
    item_idx = 0
    for subset in instance.subsets:
        wrel = subset.weight * subset.relevance
        base = item_idx
        for local in range(len(subset)):
            item_weights.append(float(wrel[local]))
        item_idx += len(subset)
        for local, photo_id in enumerate(subset.members):
            idx, sims = subset.similarity.neighbors(local)
            keep = idx[sims >= tau]
            for j in keep:
                covers[int(photo_id)].append(base + int(j))

    problem = CoverageProblem(
        item_weights=np.asarray(item_weights, dtype=np.float64),
        sets=[np.asarray(c, dtype=np.int64) for c in covers],
        set_costs=instance.costs,
        budget=budget,
    )
    solution: CoverageSolution = greedy_budgeted_coverage(problem)
    total = problem.total_weight
    alpha = solution.coverage_fraction(total)
    factor = 0.0 if alpha <= 0 else alpha / (1.0 + alpha)
    return SparsificationBound(
        tau=tau,
        alpha=alpha,
        factor=factor,
        witness=sorted(solution.chosen),
        covered_weight=solution.covered_weight,
        total_weight=total,
    )
