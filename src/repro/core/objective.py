"""The PAR objective ``G`` and its incremental evaluation.

The score of a solution ``S`` (Section 3.1) is

    G(S) = Σ_{q ∈ Q} W(q) · Σ_{p ∈ q} R(q, p) · SIM(q, p, NN(q, p, S))

where ``NN(q, p, S)`` is the most similar photo to ``p`` among ``S ∩ q``.
Because SIM is 0 across subset boundaries and 1 on the diagonal, the inner
sum only needs, for every member ``p`` of ``q``, the *best similarity seen so
far* to any selected member.  :class:`CoverageState` maintains exactly that
array per subset, which makes

* a marginal-gain query ``gain(p)`` cost ``O(Σ_{q ∋ p} |q|)`` (dense) or the
  size of ``p``'s neighbour lists (sparse), and
* an update ``add(p)`` the same.

Two interchangeable evaluation backends are provided:

* ``backend="kernel"`` (default) — runs on the flat incidence CSR
  precomputed by :class:`~repro.core.instance.PARInstance`
  (:class:`~repro.core.instance.IncidenceCSR`): per-photo contiguous slices
  of (slot, similarity, weighted relevance), so ``gain``/``add`` are a
  handful of vectorised slice ops per membership and ``all_gains`` is one
  pass of ``np.maximum`` + ``np.add.reduceat`` over the whole entry array,
  with no per-member Python loop and no sparse special-casing;
* ``backend="reference"`` — the original per-subset ``neighbors()`` loop,
  kept as the correctness oracle.

Both backends accumulate floats in the *same order* (per membership, in
ascending subset order, with identical masked dot products), so a kernel
state and a reference state fed the same add order agree bit for bit on
``value`` and the coverage vectors — which is what keeps the checkpoint
resume proofs of :mod:`repro.core.checkpoint` valid on either backend.
The default backend can be forced globally with the
``PHOCUS_COVERAGE_BACKEND`` environment variable.

All solvers in :mod:`repro.core` are built on this structure.  The module
also exposes :func:`score`, a from-scratch evaluator used by tests to verify
the incremental state, and :func:`score_breakdown` for per-subset reporting.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.instance import PARInstance
from repro.errors import ConfigurationError
from repro.obs import probes as _obs_probes

__all__ = [
    "CoverageState",
    "KERNEL",
    "REFERENCE",
    "score",
    "score_breakdown",
    "max_score",
]

KERNEL = "kernel"
REFERENCE = "reference"
_BACKENDS = (KERNEL, REFERENCE)


def _default_backend() -> str:
    return os.environ.get("PHOCUS_COVERAGE_BACKEND", KERNEL)


class CoverageState:
    """Incremental tracker of ``G`` under element insertions.

    The state holds, for every subset ``q`` and member position ``j``, the
    similarity of member ``j`` to its current nearest neighbour in the
    selection (0 when the selection contains no member of ``q``).  The total
    objective value is maintained as selections are added, and marginal
    gains are evaluated without mutating the state.

    A ``gain(p)`` query memoises its intermediate masks; an ``add(p)`` at
    the same selection size reuses them instead of recomputing the deltas
    (the CELF select step always adds the photo it just refreshed), at no
    extra cost to queries that are never followed by an add.

    Parameters
    ----------
    instance:
        The PAR instance whose objective is tracked.
    selection:
        Optional initial selection (e.g. the retention set ``S0``).
    backend:
        ``"kernel"`` (flat CSR kernels, default) or ``"reference"`` (the
        original per-subset loop).  ``None`` reads
        ``PHOCUS_COVERAGE_BACKEND`` and falls back to the kernel.
    """

    def __init__(
        self,
        instance: PARInstance,
        selection: Iterable[int] = (),
        *,
        backend: Optional[str] = None,
    ) -> None:
        if backend is None:
            backend = _default_backend()
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"unknown coverage backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.backend = backend
        _obs = _obs_probes.active()
        if _obs is not None:
            # Which evaluation backend actually serves the workload —
            # construction-time only, so gain()/add() stay probe-free.
            _obs.objective_states.labels(backend=backend).inc()
        self.instance = instance
        self._has_sparse = any(q.similarity.is_sparse for q in instance.subsets)
        self._weighted_rel: List[np.ndarray] = [
            q.weight * q.relevance for q in instance.subsets
        ]
        if backend == KERNEL:
            inc = instance.incidence
            self._best_flat: Optional[np.ndarray] = np.zeros(
                inc.total_slots, dtype=np.float64
            )
            # best[qi][j] = max similarity of member j of subset qi to the
            # selection — views into the flat slot vector, so kernel writes
            # and the per-subset accessors always agree.
            off = inc.subset_offsets
            self._best: List[np.ndarray] = [
                self._best_flat[off[qi] : off[qi + 1]]
                for qi in range(len(instance.subsets))
            ]
        else:
            self._best_flat = None
            self._best = [np.zeros(len(q), dtype=np.float64) for q in instance.subsets]
        self._value = 0.0
        self._selected: set = set()
        # Insertion order of every add(); replaying it on a fresh state
        # reproduces _best and _value bit-for-bit (float additions are
        # order-sensitive), which is what solve checkpoints rely on.
        self._order: List[int] = []
        # (photo, stamp, total, segments) of the most recent gain() query;
        # segments hold the already-computed masks an add() can replay.
        self._gain_cache: Optional[Tuple[int, int, float, list]] = None
        for p in selection:
            self.add(int(p))

    # ------------------------------------------------------------------

    @property
    def value(self) -> float:
        """Current objective value ``G(S)``."""
        return self._value

    @property
    def selected(self) -> frozenset:
        """The photos added so far (a fresh frozenset — use ``in state`` /
        ``state.size`` in hot loops)."""
        return frozenset(self._selected)

    @property
    def size(self) -> int:
        """Number of photos selected (O(1), no copy)."""
        return len(self._selected)

    @property
    def order(self) -> List[int]:
        """The photos in the exact order they were added (copy)."""
        return list(self._order)

    def __contains__(self, photo_id: int) -> bool:
        return int(photo_id) in self._selected

    def gain(self, photo_id: int) -> float:
        """Marginal gain ``G(S ∪ {p}) − G(S)`` without changing the state."""
        p = int(photo_id)
        if p in self._selected:
            return 0.0
        if self.backend == KERNEL:
            total, segments = self._evaluate_kernel(p)
        else:
            total, segments = self._evaluate_reference(p)
        self._gain_cache = (p, len(self._order), total, segments)
        return total

    def add(self, photo_id: int) -> float:
        """Add a photo to the selection; return the realised marginal gain."""
        p = int(photo_id)
        if p in self._selected:
            return 0.0
        cache = self._gain_cache
        if cache is not None and cache[0] == p and cache[1] == len(self._order):
            # The preceding gain(p) already computed the deltas and masks
            # at this exact selection — replay them instead of recomputing.
            realized, segments = cache[2], cache[3]
        elif self.backend == KERNEL:
            realized, segments = self._evaluate_kernel(p)
        else:
            realized, segments = self._evaluate_reference(p)
        if self.backend == KERNEL:
            best = self._best_flat
            for slots, sims, positive in segments:
                best[slots[positive]] = sims[positive]
        else:
            for qi, idx, sims, positive in segments:
                self._best[qi][idx[positive]] = sims[positive]
        self._gain_cache = None
        self._selected.add(p)
        self._order.append(p)
        self._value += realized
        return realized

    # ----------------------------------------------------------- kernels

    def _evaluate_kernel(self, p: int) -> Tuple[float, list]:
        """Marginal gain of ``p`` on the flat CSR plus replayable segments.

        One gather/subtract/compare pass over the photo's whole entry
        range, then one masked dot per membership.  Accumulation matches
        the reference backend bit for bit: delta values are elementwise
        identical however the range is sliced, each dot runs on the same
        extracted operands in the same (ascending-subset) order, and
        all-zero segments contribute exactly nothing either way.
        """
        inc = self.instance.incidence
        s0 = inc.entry_indptr[p]
        e0 = inc.entry_indptr[p + 1]
        if s0 == e0:
            return 0.0, []
        slots = inc.slots[s0:e0]
        sims = inc.sims[s0:e0]
        delta = sims - self._best_flat[slots]
        positive = delta > 0
        if not positive.any():
            return 0.0, []
        wrel = inc.wrel[s0:e0]
        ms = inc.photo_member_indptr[p]
        me = inc.photo_member_indptr[p + 1]
        if me - ms == 1:
            return float(wrel[positive] @ delta[positive]), [(slots, sims, positive)]
        eptr = inc.member_entry_indptr
        total = 0.0
        for k in range(ms, me):
            s = eptr[k] - s0
            e = eptr[k + 1] - s0
            pseg = positive[s:e]
            dsel = delta[s:e][pseg]
            if dsel.size:
                total += float(wrel[s:e][pseg] @ dsel)
        # The add-replay segment covers the whole entry range at once:
        # memberships live in disjoint subsets, so their slots never
        # collide and one masked assignment equals the per-segment writes.
        return total, [(slots, sims, positive)]

    def _evaluate_reference(self, p: int) -> Tuple[float, list]:
        """The original per-subset ``neighbors()`` evaluation (oracle)."""
        total = 0.0
        segments: list = []
        for qi, local in self.instance.membership[p]:
            subset = self.instance.subsets[qi]
            best = self._best[qi]
            wrel = self._weighted_rel[qi]
            idx, sims = subset.similarity.neighbors(local)
            delta = sims - best[idx]
            positive = delta > 0
            if np.any(positive):
                total += float(wrel[idx[positive]] @ delta[positive])
                segments.append((qi, idx, sims, positive))
        return total, segments

    def all_gains(self) -> np.ndarray:
        """Marginal gains of every photo at once (vectorised).

        Equivalent to ``[self.gain(p) for p in range(n)]`` but computed in
        bulk, which is substantially faster when many candidates must be
        ranked (online bounds, branch-and-bound root ordering, batch
        heuristics).  The kernel backend runs one masked
        multiply + ``np.add.reduceat`` pass over the flat entry array —
        dense and sparse instances take the identical code path; the
        reference backend keeps the original per-subset evaluation.
        Selected photos report 0.
        """
        if self.backend == KERNEL:
            gains = self._all_gains_kernel()
        else:
            gains = self._all_gains_reference()
        if self._selected:
            gains[list(self._selected)] = 0.0
        return gains

    def _all_gains_kernel(self) -> np.ndarray:
        inc = self.instance.incidence
        gains = np.zeros(self.instance.n, dtype=np.float64)
        if inc.slots.size == 0:
            return gains
        if not self._has_sparse:
            # All-dense instances: the per-subset BLAS matmul beats the
            # flat gather+reduceat pass (contiguous SIMD vs indexed loads),
            # so delegate to it.  Sparse/mixed instances take the flat
            # path, which has no per-row Python loop.
            return self._all_gains_reference()
        delta = inc.sims - self._best_flat[inc.slots]
        np.maximum(delta, 0.0, out=delta)
        delta *= inc.wrel
        starts = inc.entry_indptr[:-1]
        nonempty = starts < inc.entry_indptr[1:]
        # reduceat over the nonempty per-photo ranges: consecutive nonempty
        # starts abut (empty ranges have zero width), so each segment ends
        # exactly at the next start.
        gains[nonempty] = np.add.reduceat(delta, starts[nonempty])
        return gains

    def _all_gains_reference(self) -> np.ndarray:
        gains = np.zeros(self.instance.n, dtype=np.float64)
        for qi, subset in enumerate(self.instance.subsets):
            best = self._best[qi]
            wrel = self._weighted_rel[qi]
            sim = subset.similarity
            if not sim.is_sparse:
                delta = sim.matrix - best[None, :]
                np.maximum(delta, 0.0, out=delta)
                local_gains = delta @ wrel
            else:
                local_gains = np.empty(len(subset))
                for local in range(len(subset)):
                    idx, sims = sim.neighbors(local)
                    diff = sims - best[idx]
                    positive = diff > 0
                    local_gains[local] = (
                        float(wrel[idx[positive]] @ diff[positive])
                        if np.any(positive)
                        else 0.0
                    )
            np.add.at(gains, subset.members, local_gains)
        return gains

    # ------------------------------------------------------------------

    def copy(self) -> "CoverageState":
        """Deep copy (shares the immutable instance, copies mutable state)."""
        clone = CoverageState.__new__(CoverageState)
        clone.backend = self.backend
        clone.instance = self.instance
        clone._has_sparse = self._has_sparse
        clone._weighted_rel = self._weighted_rel
        if self.backend == KERNEL:
            clone._best_flat = self._best_flat.copy()
            off = self.instance.incidence.subset_offsets
            clone._best = [
                clone._best_flat[off[qi] : off[qi + 1]]
                for qi in range(len(self.instance.subsets))
            ]
        else:
            clone._best_flat = None
            clone._best = [b.copy() for b in self._best]
        clone._value = self._value
        clone._selected = set(self._selected)
        clone._order = list(self._order)
        clone._gain_cache = None
        return clone

    def subset_value(self, qi: int) -> float:
        """Weighted score contribution ``W(q) · G(q, S)`` of subset ``qi``."""
        return float(self._weighted_rel[qi] @ self._best[qi])

    def coverage_of(self, qi: int) -> np.ndarray:
        """Per-member nearest-neighbour similarities for subset ``qi`` (copy)."""
        return self._best[qi].copy()


def score(instance: PARInstance, selection: Iterable[int]) -> float:
    """Evaluate ``G(S)`` from scratch (reference implementation).

    Quadratic in subset size; used for validation and small instances.
    """
    return sum(contrib for _, contrib in _subset_contributions(instance, selection))


def score_breakdown(
    instance: PARInstance, selection: Iterable[int]
) -> Dict[str, float]:
    """Per-subset weighted contributions ``{subset_id: W(q) · G(q, S)}``."""
    return {
        instance.subsets[qi].subset_id: contrib
        for qi, contrib in _subset_contributions(instance, selection)
    }


def max_score(instance: PARInstance) -> float:
    """The maximum attainable score ``G(P) = Σ_q W(q)``.

    Selecting every photo gives each member a nearest neighbour of
    similarity 1 (itself), so each subset scores exactly its weight.
    """
    return float(sum(q.weight for q in instance.subsets))


def _subset_contributions(
    instance: PARInstance, selection: Iterable[int]
) -> List[Tuple[int, float]]:
    sel = set(int(p) for p in selection)
    out: List[Tuple[int, float]] = []
    for qi, subset in enumerate(instance.subsets):
        local_selected = [
            j for j, photo_id in enumerate(subset.members) if int(photo_id) in sel
        ]
        if not local_selected:
            out.append((qi, 0.0))
            continue
        m = len(subset)
        best = np.zeros(m, dtype=np.float64)
        for j in local_selected:
            idx, sims = subset.similarity.neighbors(j)
            np.maximum.at(best, idx, sims)
        out.append((qi, float(subset.weight * (subset.relevance @ best))))
    return out
