"""The PAR objective ``G`` and its incremental evaluation.

The score of a solution ``S`` (Section 3.1) is

    G(S) = Σ_{q ∈ Q} W(q) · Σ_{p ∈ q} R(q, p) · SIM(q, p, NN(q, p, S))

where ``NN(q, p, S)`` is the most similar photo to ``p`` among ``S ∩ q``.
Because SIM is 0 across subset boundaries and 1 on the diagonal, the inner
sum only needs, for every member ``p`` of ``q``, the *best similarity seen so
far* to any selected member.  :class:`CoverageState` maintains exactly that
array per subset, which makes

* a marginal-gain query ``gain(p)`` cost ``O(Σ_{q ∋ p} |q|)`` (dense) or the
  size of ``p``'s neighbour lists (sparse), and
* an update ``add(p)`` the same.

All solvers in :mod:`repro.core` are built on this structure.  The module
also exposes :func:`score`, a from-scratch evaluator used by tests to verify
the incremental state, and :func:`score_breakdown` for per-subset reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.instance import PARInstance

__all__ = ["CoverageState", "score", "score_breakdown", "max_score"]


class CoverageState:
    """Incremental tracker of ``G`` under element insertions.

    The state holds, for every subset ``q`` and member position ``j``, the
    similarity of member ``j`` to its current nearest neighbour in the
    selection (0 when the selection contains no member of ``q``).  The total
    objective value is maintained as selections are added, and marginal
    gains are evaluated without mutating the state.

    Parameters
    ----------
    instance:
        The PAR instance whose objective is tracked.
    selection:
        Optional initial selection (e.g. the retention set ``S0``).
    """

    def __init__(self, instance: PARInstance, selection: Iterable[int] = ()) -> None:
        self.instance = instance
        # best[qi][j] = max similarity of member j of subset qi to the selection.
        self._best: List[np.ndarray] = [
            np.zeros(len(q), dtype=np.float64) for q in instance.subsets
        ]
        self._weighted_rel: List[np.ndarray] = [
            q.weight * q.relevance for q in instance.subsets
        ]
        self._value = 0.0
        self._selected: set = set()
        # Insertion order of every add(); replaying it on a fresh state
        # reproduces _best and _value bit-for-bit (float additions are
        # order-sensitive), which is what solve checkpoints rely on.
        self._order: List[int] = []
        for p in selection:
            self.add(int(p))

    # ------------------------------------------------------------------

    @property
    def value(self) -> float:
        """Current objective value ``G(S)``."""
        return self._value

    @property
    def selected(self) -> frozenset:
        """The photos added so far."""
        return frozenset(self._selected)

    @property
    def order(self) -> List[int]:
        """The photos in the exact order they were added (copy)."""
        return list(self._order)

    def __contains__(self, photo_id: int) -> bool:
        return int(photo_id) in self._selected

    def gain(self, photo_id: int) -> float:
        """Marginal gain ``G(S ∪ {p}) − G(S)`` without changing the state."""
        p = int(photo_id)
        if p in self._selected:
            return 0.0
        total = 0.0
        for qi, local in self.instance.membership[p]:
            subset = self.instance.subsets[qi]
            best = self._best[qi]
            wrel = self._weighted_rel[qi]
            idx, sims = subset.similarity.neighbors(local)
            delta = sims - best[idx]
            positive = delta > 0
            if np.any(positive):
                total += float(wrel[idx[positive]] @ delta[positive])
        return total

    def all_gains(self) -> np.ndarray:
        """Marginal gains of every photo at once (vectorised).

        Equivalent to ``[self.gain(p) for p in range(n)]`` but computed
        per subset with one matrix operation, which is substantially
        faster when many candidates must be ranked (online bounds,
        branch-and-bound root ordering, batch heuristics).  Selected
        photos report 0.
        """
        gains = np.zeros(self.instance.n, dtype=np.float64)
        for qi, subset in enumerate(self.instance.subsets):
            best = self._best[qi]
            wrel = self._weighted_rel[qi]
            sim = subset.similarity
            if not sim.is_sparse:
                delta = sim.matrix - best[None, :]
                np.maximum(delta, 0.0, out=delta)
                local_gains = delta @ wrel
            else:
                local_gains = np.empty(len(subset))
                for local in range(len(subset)):
                    idx, sims = sim.neighbors(local)
                    diff = sims - best[idx]
                    positive = diff > 0
                    local_gains[local] = (
                        float(wrel[idx[positive]] @ diff[positive])
                        if np.any(positive)
                        else 0.0
                    )
            np.add.at(gains, subset.members, local_gains)
        if self._selected:
            gains[list(self._selected)] = 0.0
        return gains

    def add(self, photo_id: int) -> float:
        """Add a photo to the selection; return the realised marginal gain."""
        p = int(photo_id)
        if p in self._selected:
            return 0.0
        realized = 0.0
        for qi, local in self.instance.membership[p]:
            subset = self.instance.subsets[qi]
            best = self._best[qi]
            wrel = self._weighted_rel[qi]
            idx, sims = subset.similarity.neighbors(local)
            delta = sims - best[idx]
            positive = delta > 0
            if np.any(positive):
                pos_idx = idx[positive]
                realized += float(wrel[pos_idx] @ delta[positive])
                best[pos_idx] = sims[positive]
        self._selected.add(p)
        self._order.append(p)
        self._value += realized
        return realized

    def copy(self) -> "CoverageState":
        """Deep copy (shares the immutable instance, copies mutable state)."""
        clone = CoverageState.__new__(CoverageState)
        clone.instance = self.instance
        clone._best = [b.copy() for b in self._best]
        clone._weighted_rel = self._weighted_rel
        clone._value = self._value
        clone._selected = set(self._selected)
        clone._order = list(self._order)
        return clone

    def subset_value(self, qi: int) -> float:
        """Weighted score contribution ``W(q) · G(q, S)`` of subset ``qi``."""
        return float(self._weighted_rel[qi] @ self._best[qi])

    def coverage_of(self, qi: int) -> np.ndarray:
        """Per-member nearest-neighbour similarities for subset ``qi`` (copy)."""
        return self._best[qi].copy()


def score(instance: PARInstance, selection: Iterable[int]) -> float:
    """Evaluate ``G(S)`` from scratch (reference implementation).

    Quadratic in subset size; used for validation and small instances.
    """
    return sum(contrib for _, contrib in _subset_contributions(instance, selection))


def score_breakdown(
    instance: PARInstance, selection: Iterable[int]
) -> Dict[str, float]:
    """Per-subset weighted contributions ``{subset_id: W(q) · G(q, S)}``."""
    return {
        instance.subsets[qi].subset_id: contrib
        for qi, contrib in _subset_contributions(instance, selection)
    }


def max_score(instance: PARInstance) -> float:
    """The maximum attainable score ``G(P) = Σ_q W(q)``.

    Selecting every photo gives each member a nearest neighbour of
    similarity 1 (itself), so each subset scores exactly its weight.
    """
    return float(sum(q.weight for q in instance.subsets))


def _subset_contributions(
    instance: PARInstance, selection: Iterable[int]
) -> List[Tuple[int, float]]:
    sel = set(int(p) for p in selection)
    out: List[Tuple[int, float]] = []
    for qi, subset in enumerate(instance.subsets):
        local_selected = [
            j for j, photo_id in enumerate(subset.members) if int(photo_id) in sel
        ]
        if not local_selected:
            out.append((qi, 0.0))
            continue
        m = len(subset)
        best = np.zeros(m, dtype=np.float64)
        for j in local_selected:
            idx, sims = subset.similarity.neighbors(j)
            np.maximum.at(best, idx, sims)
        out.append((qi, float(subset.weight * (subset.relevance @ best))))
    return out
