"""Overload resilience for the PHOcus service.

Four cooperating mechanisms keep the service useful under pressure
instead of failing open (unbounded queues) or failing closed (hard
errors for everyone):

* :mod:`repro.resilience.deadline` — request deadlines threaded from
  the HTTP edge into the solver hot loops; expired solves raise
  :class:`~repro.errors.DeadlineExceeded` carrying a resumable
  checkpoint (near-zero cost when disarmed, like :mod:`repro.faults`).
* :mod:`repro.resilience.admission` — adaptive load shedding with
  in-flight bounds, queue-wait EWMAs, and per-tenant fairness; sheds
  early with :class:`~repro.errors.ServiceOverloaded` (503 +
  ``Retry-After``).
* :mod:`repro.resilience.brownout` — opt-in degraded answers under
  pressure (τ-sparsified solve or cached replay), always labeled.
* :mod:`repro.resilience.drain` — the SIGTERM drain state machine:
  stop accepting, checkpoint running jobs, release leases, flush.

:class:`Resilience` bundles one of each as the service's single wiring
point: ``PhocusService(..., resilience=Resilience(...))``.  Everything
is opt-in — a service built without a bundle behaves exactly as before.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.resilience.admission import AdmissionController, Ewma
from repro.resilience.brownout import BrownoutPolicy, SolutionCache, solve_cache_key
from repro.resilience.deadline import (
    Deadline,
    check,
    current,
    deadline_scope,
    remaining,
)
from repro.resilience.drain import DrainController

__all__ = [
    "AdmissionController",
    "BrownoutPolicy",
    "Deadline",
    "DrainController",
    "Ewma",
    "Resilience",
    "SolutionCache",
    "check",
    "current",
    "deadline_scope",
    "remaining",
    "solve_cache_key",
]


class Resilience:
    """The service's resilience bundle: admission + brownout + drain.

    Any component may be ``None``: ``admission=None`` disables shedding,
    ``brownout=None`` disables degraded answers (requests asking for
    ``degraded_ok`` still get full answers), and the drain controller is
    always present so SIGTERM handling works even on a minimal bundle.

    ``default_deadline_ms`` applies to requests that carry no deadline of
    their own (``0``/``None`` = no default).
    """

    def __init__(
        self,
        *,
        admission: Optional[AdmissionController] = None,
        brownout: Optional[BrownoutPolicy] = None,
        drain: Optional[DrainController] = None,
        default_deadline_ms: Optional[int] = None,
    ) -> None:
        self.admission = admission
        self.brownout = brownout
        self.drain = drain if drain is not None else DrainController()
        self.default_deadline_ms = (
            int(default_deadline_ms) if default_deadline_ms else None
        )

    def request_deadline(self, deadline_ms: Optional[float]) -> Optional[Deadline]:
        """Build the :class:`Deadline` for a request (or ``None``).

        ``deadline_ms`` is the request's own value (header or body
        field); the bundle default fills in when the request has none.
        """
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if not deadline_ms:
            return None
        return Deadline(float(deadline_ms) / 1000.0)

    def pressure(self) -> float:
        return self.admission.pressure() if self.admission is not None else 0.0

    def ready(self) -> bool:
        """Whether a load balancer should route here (readiness)."""
        if self.drain.draining():
            return False
        if self.admission is not None and self.admission.overloaded():
            return False
        return True

    def snapshot(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"drain": self.drain.snapshot()}
        if self.default_deadline_ms:
            doc["default_deadline_ms"] = self.default_deadline_ms
        if self.admission is not None:
            doc["admission"] = self.admission.snapshot()
        if self.brownout is not None:
            doc["brownout"] = self.brownout.snapshot()
        return doc
