"""Adaptive load shedding: admit, degrade, or shed *before* work starts.

The :class:`AdmissionController` is the service's bouncer.  It tracks

* **in-flight work** — how many admitted solves are executing right now,
  globally and per tenant;
* **latency EWMAs** — exponentially weighted moving averages of queue
  wait (fed by the job manager's first-dequeue measurement) and service
  time (measured around every admitted request);

and sheds a request with :class:`~repro.errors.ServiceOverloaded`
(HTTP 503 + ``Retry-After``) when admitting it could not end well:

``capacity``
    every in-flight slot is taken — queueing behind them only grows the
    latency tail;
``tenant_fairness``
    under contention one tenant may not hold more than its fair share of
    slots, so a hot tenant's burst sheds *its own* requests instead of
    starving everyone else;
``deadline_unmeetable``
    the request carries a deadline smaller than the predicted wait +
    service time — solving it would burn CPU for a client that will have
    given up;
``queue_full_soon`` (job submissions)
    the background queue's predicted drain time already exceeds the
    target wait — shed at ``shed_queue_fraction`` of capacity, *before*
    the hard 429 bound is hit.

``pressure()`` condenses the state into one number (1.0 = at capacity);
the brownout layer reads it to decide when degraded answers kick in, and
``/readyz`` reports not-ready while it saturates.  All decisions are
O(1) under one lock; the controller is safe for concurrent handler
threads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.errors import ServiceOverloaded
from repro.obs import probes as _obs_probes
from repro.resilience.deadline import Deadline

__all__ = ["Ewma", "AdmissionController"]


class Ewma:
    """An exponentially weighted moving average (thread-safe via owner lock).

    ``alpha`` is the weight of each new observation; the first
    observation seeds the average directly.
    """

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        return self.value

    def get(self, default: float = 0.0) -> float:
        return default if self.value is None else self.value


class AdmissionController:
    """Sheds load early so admitted requests keep meeting their deadlines.

    Parameters
    ----------
    max_inflight:
        Hard bound on concurrently admitted solves (the service's
        synchronous capacity).
    tenant_fair_share:
        Fraction of ``max_inflight`` one tenant may hold while other
        tenants are waiting for slots (only enforced under contention —
        a lone tenant may use every slot).
    target_wait_seconds:
        The queue-wait SLO for background jobs; job submissions are shed
        once the predicted wait exceeds it.
    shed_queue_fraction:
        Queue fill fraction at which job submissions start shedding with
        503 (before the queue's own hard 429 at 100%).
    retry_after_seconds:
        Base client backoff; scaled up with measured pressure so a
        deeply overloaded service asks for longer pauses.
    """

    def __init__(
        self,
        max_inflight: int,
        *,
        tenant_fair_share: float = 0.5,
        target_wait_seconds: float = 5.0,
        shed_queue_fraction: float = 0.9,
        retry_after_seconds: float = 1.0,
        ewma_alpha: float = 0.3,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not 0.0 < tenant_fair_share <= 1.0:
            raise ValueError("tenant_fair_share must be in (0, 1]")
        if not 0.0 < shed_queue_fraction <= 1.0:
            raise ValueError("shed_queue_fraction must be in (0, 1]")
        self.max_inflight = int(max_inflight)
        self.tenant_fair_share = float(tenant_fair_share)
        self.target_wait_seconds = float(target_wait_seconds)
        self.shed_queue_fraction = float(shed_queue_fraction)
        self.retry_after_seconds = float(retry_after_seconds)
        self._lock = threading.Lock()
        self._inflight_total = 0
        self._inflight_by_tenant: Dict[str, int] = {}
        self._wait_ewma = Ewma(ewma_alpha)
        self._service_ewma = Ewma(ewma_alpha)
        self._shed_count = 0
        self._admitted_count = 0
        self._peak_inflight = 0

    # ----------------------------------------------------------- telemetry

    def observe_wait(self, seconds: float) -> None:
        """Feed one measured queue wait (manager: submission → dequeue)."""
        with self._lock:
            value = self._wait_ewma.update(seconds)
        obs = _obs_probes.active()
        if obs is not None:
            obs.resilience_wait_ewma.set(value)

    def observe_service_time(self, seconds: float) -> None:
        with self._lock:
            self._service_ewma.update(seconds)

    def pressure(self) -> float:
        """Load relative to capacity: >= 1.0 means shedding territory."""
        with self._lock:
            return self._pressure_locked()

    def _pressure_locked(self) -> float:
        utilisation = self._inflight_total / self.max_inflight
        wait = self._wait_ewma.get()
        wait_pressure = (
            wait / self.target_wait_seconds if self.target_wait_seconds > 0 else 0.0
        )
        return max(utilisation, wait_pressure)

    def overloaded(self) -> bool:
        return self.pressure() >= 1.0

    def _retry_after_locked(self) -> float:
        # Scale the advertised backoff with both pressure and measured
        # service time, so clients of a badly overloaded service spread
        # their retries instead of synchronising a thundering herd.
        pressure = max(1.0, self._pressure_locked())
        base = max(self.retry_after_seconds, self._service_ewma.get())
        return round(min(30.0, base * pressure), 3)

    # ----------------------------------------------------------- admission

    def _shed_locked(self, tenant: str, reason: str, message: str) -> ServiceOverloaded:
        self._shed_count += 1
        exc = ServiceOverloaded(
            message,
            reason=reason,
            retry_after=self._retry_after_locked(),
            tenant=tenant,
        )
        obs = _obs_probes.active()
        if obs is not None:
            obs.resilience_shed.labels(reason=reason, tenant=tenant).inc()
        return exc

    @contextmanager
    def admit(
        self, tenant: str, *, deadline: Optional[Deadline] = None
    ) -> Iterator[None]:
        """Hold one in-flight slot for the ``with`` block, or shed.

        Raises :class:`ServiceOverloaded` without acquiring a slot when
        the request should be shed; otherwise the block runs with the
        slot held and its wall-clock feeds the service-time EWMA.
        """
        tenant = tenant or "default"
        with self._lock:
            if self._inflight_total >= self.max_inflight:
                raise self._shed_locked(
                    tenant,
                    "capacity",
                    f"all {self.max_inflight} in-flight slots are busy",
                )
            held = self._inflight_by_tenant.get(tenant, 0)
            fair_slots = max(1, int(self.max_inflight * self.tenant_fair_share))
            contended = len(self._inflight_by_tenant) > (1 if held else 0)
            if contended and held >= fair_slots:
                raise self._shed_locked(
                    tenant,
                    "tenant_fairness",
                    f"tenant {tenant!r} holds {held} of {self.max_inflight} "
                    f"slots (fair share {fair_slots}) while others wait",
                )
            if deadline is not None:
                remaining = deadline.remaining()
                predicted = self._service_ewma.get()
                if remaining is not None and predicted > 0 and remaining < predicted:
                    raise self._shed_locked(
                        tenant,
                        "deadline_unmeetable",
                        f"deadline leaves {remaining:.3f}s but similar requests "
                        f"take {predicted:.3f}s",
                    )
            self._inflight_total += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight_total)
            self._inflight_by_tenant[tenant] = held + 1
            self._admitted_count += 1
        obs = _obs_probes.active()
        if obs is not None:
            obs.resilience_inflight.set(self._inflight_total)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    obs.resilience_deadline_remaining.observe(remaining)
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                self._inflight_total -= 1
                left = self._inflight_by_tenant.get(tenant, 1) - 1
                if left <= 0:
                    self._inflight_by_tenant.pop(tenant, None)
                else:
                    self._inflight_by_tenant[tenant] = left
                self._service_ewma.update(elapsed)
            if obs is not None:
                obs.resilience_inflight.set(self._inflight_total)
                obs.resilience_pressure.set(self.pressure())

    def check_queue(self, tenant: str, depth: int, limit: int) -> None:
        """Shed a job submission when the queue is effectively saturated.

        Fires at ``shed_queue_fraction`` of the hard bound, or when the
        queue's predicted drain time (depth × service EWMA / capacity)
        exceeds the target wait — whichever trips first.  Unbounded
        queues (``limit=0``) only use the predicted-wait rule.
        """
        tenant = tenant or "default"
        with self._lock:
            if limit and depth >= max(1, int(limit * self.shed_queue_fraction)):
                raise self._shed_locked(
                    tenant,
                    "queue_full_soon",
                    f"job queue at {depth}/{limit}; shedding before saturation",
                )
            predicted = depth * self._service_ewma.get() / max(1, self.max_inflight)
            if self.target_wait_seconds > 0 and predicted > self.target_wait_seconds:
                raise self._shed_locked(
                    tenant,
                    "queue_full_soon",
                    f"predicted queue wait {predicted:.2f}s exceeds the "
                    f"{self.target_wait_seconds:.2f}s target",
                )

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> Dict[str, Any]:
        """Operational view for ``/stats`` and ``/readyz``."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight_total,
                "peak_inflight": self._peak_inflight,
                "inflight_by_tenant": dict(self._inflight_by_tenant),
                "pressure": round(self._pressure_locked(), 4),
                "wait_ewma_seconds": self._wait_ewma.get(),
                "service_ewma_seconds": self._service_ewma.get(),
                "admitted": self._admitted_count,
                "shed": self._shed_count,
                "retry_after_seconds": self._retry_after_locked(),
            }
