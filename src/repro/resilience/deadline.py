"""Deadline propagation: a cooperative, near-zero-cost time budget.

A :class:`Deadline` is the request's remaining time budget, threaded
from the service edge (``X-Phocus-Deadline-Ms`` header / ``deadline_ms``
body field / job spec field) down into the solver hot loops.  The
mechanism copies the :mod:`repro.faults` single-``None``-check pattern:
the deadline for the current thread lives in a thread-local slot, the
solver fetches it **once** per pass, and the per-iteration cost when no
deadline is armed is a single local ``is not None`` test.

When an armed deadline expires (or is interrupted — see
:meth:`Deadline.expire_now`, the graceful-drain hook), the solver raises
:class:`~repro.errors.DeadlineExceeded` *carrying its latest resumable
checkpoint document*, so an expired solve costs no further CPU and loses
no work: the job manager persists the checkpoint and a later resume
continues bit-identically (the PR-2 machinery).

Scopes nest: arming a deadline inside an existing scope chains them, and
the effective deadline is "whichever expires first".  A job therefore
runs under the manager's interrupt-only deadline (so drain can stop it)
*and* its own request deadline at once.

Fault site ``resilience.clock_skew`` (a ``drop``-action probe inside
:meth:`Deadline.expired`) lets chaos tests simulate the wall clock
jumping past the deadline between two iterations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro import faults as _faults
from repro.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "current",
    "deadline_scope",
    "check",
    "remaining",
]

_tls = threading.local()


class Deadline:
    """A monotonic-clock expiry plus an external interrupt switch.

    ``seconds=None`` builds an *interrupt-only* deadline: it never times
    out by itself but :meth:`expire_now` can trip it from another thread
    (the graceful-drain path).  ``parent`` chains an enclosing scope's
    deadline; the combined deadline expires when either does.
    """

    __slots__ = ("seconds", "_expires_at", "_started_at", "_interrupt", "_parent")

    def __init__(
        self, seconds: Optional[float] = None, *, parent: Optional["Deadline"] = None
    ) -> None:
        if seconds is not None and seconds <= 0:
            # Already expired at construction: keep the arithmetic honest
            # instead of rejecting — admission checks catch this earlier.
            seconds = 0.0
        self.seconds = seconds
        self._started_at = time.monotonic()
        self._expires_at = None if seconds is None else self._started_at + seconds
        # One word, assigned atomically under the GIL — readable from the
        # solve thread without a lock.
        self._interrupt: Optional[str] = None
        self._parent = parent

    # ------------------------------------------------------------- queries

    def expired(self) -> bool:
        """Whether the budget is gone (time, interrupt, or parent)."""
        if self._interrupt is not None:
            return True
        if self._expires_at is not None and time.monotonic() >= self._expires_at:
            return True
        if _faults.should_drop("resilience.clock_skew"):
            self._interrupt = "clock_skew"
            return True
        if self._parent is not None:
            return self._parent.expired()
        return False

    def reason(self) -> str:
        """Why the deadline tripped (meaningful once :meth:`expired`)."""
        if self._interrupt is not None:
            return self._interrupt
        if self._expires_at is not None and time.monotonic() >= self._expires_at:
            return "deadline"
        if self._parent is not None:
            return self._parent.reason()
        return "deadline"

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative); ``None`` means unbounded."""
        if self._interrupt is not None:
            return 0.0
        own = (
            None
            if self._expires_at is None
            else max(0.0, self._expires_at - time.monotonic())
        )
        inherited = self._parent.remaining() if self._parent is not None else None
        if own is None:
            return inherited
        if inherited is None:
            return own
        return min(own, inherited)

    def elapsed(self) -> float:
        return time.monotonic() - self._started_at

    # ------------------------------------------------------------ controls

    def expire_now(self, reason: str = "interrupted") -> None:
        """Trip the deadline from any thread (graceful drain uses
        ``reason="drain"``); the solve raises at its next check."""
        self._interrupt = reason

    def to_exception(self, checkpoint: Optional[dict] = None) -> DeadlineExceeded:
        """Build the structured exception for this expired deadline."""
        reason = self.reason()
        if reason == "drain":
            message = "solve interrupted by graceful drain"
        elif self.seconds is not None:
            message = f"deadline of {self.seconds:.3f}s exceeded after {self.elapsed():.3f}s"
        else:
            message = f"solve interrupted ({reason})"
        return DeadlineExceeded(
            message,
            reason=reason,
            deadline_seconds=self.seconds,
            elapsed_seconds=self.elapsed(),
            checkpoint=checkpoint,
        )


def current() -> Optional[Deadline]:
    """The deadline armed for this thread, or ``None`` — THE hot-path read.

    Solver loops fetch this once per pass; per-iteration they only test
    the local against ``None``, so the disarmed cost matches the
    :mod:`repro.faults` probe pattern.
    """
    return getattr(_tls, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Arm ``deadline`` for the current thread for the ``with`` block.

    Nesting chains scopes: the inner block runs under *both* deadlines
    (whichever expires first wins).  ``deadline=None`` is a no-op scope,
    so call sites can arm conditionally without branching.
    """
    if deadline is None:
        yield None
        return
    previous = getattr(_tls, "deadline", None)
    if previous is not None and deadline._parent is None:
        deadline._parent = previous
    _tls.deadline = deadline
    try:
        yield deadline
    finally:
        _tls.deadline = previous


def check(checkpoint: Optional[dict] = None) -> None:
    """Raise :class:`DeadlineExceeded` if this thread's deadline expired.

    For warm paths outside the solver's inner loop (batch dispatch,
    payload execution); the solver loops inline the equivalent test for
    speed and attach their live checkpoint document.
    """
    dl = getattr(_tls, "deadline", None)
    if dl is None:
        return
    if dl.expired():
        raise dl.to_exception(checkpoint)


def remaining() -> Optional[float]:
    """Seconds left on this thread's deadline (``None`` = unbounded)."""
    dl = getattr(_tls, "deadline", None)
    return None if dl is None else dl.remaining()
