"""Graceful drain: SIGTERM → stop accepting → checkpoint → hand off.

:class:`DrainController` is the small state machine behind the drain
sequence; the heavy lifting happens in the layers it coordinates:

1. **stop accepting** — the controller flips to ``draining``;
   ``/readyz`` starts answering 503 so load balancers stop routing
   here, and new solves/submissions are shed with
   ``ServiceOverloaded(reason="draining")``.
2. **checkpoint running jobs** — the job manager trips each running
   solve's interrupt-only :class:`~repro.resilience.deadline.Deadline`
   with ``expire_now("drain")``; the solver raises
   :class:`~repro.errors.DeadlineExceeded` at its next cooperative
   check, carrying a fresh resumable checkpoint, and the manager
   persists it and returns the job to ``QUEUED`` (a legal retry
   transition).  A later process replays the journal and resumes each
   job bit-identically (PR-2 machinery).  Solves that do not yield
   within ``grace_seconds`` are abandoned and requeued from their last
   persisted checkpoint.
3. **release resources** — tenant warm-cache leases are dropped and
   shared-memory segments released (``Tenants.close``), then the
   journal is flushed.

States only move forward: ``accepting → draining → drained``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

__all__ = ["DrainController"]


class DrainController:
    """Forward-only drain state machine shared by service, jobs, and CLI."""

    ACCEPTING = "accepting"
    DRAINING = "draining"
    DRAINED = "drained"

    def __init__(self, grace_seconds: float = 10.0) -> None:
        self.grace_seconds = float(grace_seconds)
        self._lock = threading.Lock()
        self._state = self.ACCEPTING
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._drain_event = threading.Event()

    # -------------------------------------------------------------- queries

    @property
    def state(self) -> str:
        return self._state

    def accepting(self) -> bool:
        return self._state == self.ACCEPTING

    def draining(self) -> bool:
        return self._state != self.ACCEPTING

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain begins (the serve loop parks here)."""
        return self._drain_event.wait(timeout)

    # ---------------------------------------------------------- transitions

    def begin(self) -> bool:
        """Enter ``draining``; ``False`` if a drain had already started."""
        with self._lock:
            if self._state != self.ACCEPTING:
                return False
            self._state = self.DRAINING
            self._started_at = time.monotonic()
        self._drain_event.set()
        return True

    def finish(self) -> None:
        with self._lock:
            if self._state == self.DRAINED:
                return
            self._state = self.DRAINED
            self._finished_at = time.monotonic()
        self._drain_event.set()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            doc: Dict[str, Any] = {
                "state": self._state,
                "grace_seconds": self.grace_seconds,
            }
            if self._started_at is not None:
                end = self._finished_at or time.monotonic()
                doc["drain_seconds"] = round(end - self._started_at, 3)
            return doc
