"""Brownout degradation: cheaper, *labeled* answers under pressure.

Production photo services degrade instead of failing (see PAPERS.md,
"Reducing Storage in Large-Scale Photo Sharing Services using
Recompression"); the paper's own τ-sparsification (Theorem 4.8,
:mod:`repro.sparsify`) gives this service a principled cheaper-answer
knob.  :class:`BrownoutPolicy` decides, per request, which of three
tiers a ``/solve`` runs at:

``full``
    pressure below ``degrade_at`` — the normal paper-faithful solve.
    Bit-exactness of this path is untouched: a non-degraded response
    never gains a ``degraded`` key.
``sparsified``
    pressure in ``[degrade_at, cache_at)`` — solve a τ-sparsified copy
    of the instance.  Much cheaper (the sparse kernel path), still a
    real solve of *this* instance, and Theorem 4.8 bounds the loss.
``cached``
    pressure at/above ``cache_at`` — skip solving entirely and replay
    the last full-fidelity answer for the same solve identity
    ``(tenant, instance, version, budget, algorithm, ...)``.  Zero
    solver cost; the answer may be stale by ``age_seconds``.

Degradation is **opt-in per request** (``degraded_ok: true`` in the
``/solve`` body): clients that did not ask for it always get the full
answer or a shed, never silently degraded data.  Every degraded
response is labeled with a ``degraded`` object carrying the mode and
quality metadata, so downstream consumers can tell replica-grade
answers from brownout answers.

The cache only stores ``by_ref`` solves — inline instances have no
stable identity — and is a small byte-budgeted LRU
(:class:`repro.lru.ByteBudgetLRU`) with a TTL, so a brownout can never
grow memory without bound or serve arbitrarily old answers.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.lru import ByteBudgetLRU
from repro.obs import probes as _obs_probes

__all__ = ["BrownoutPolicy", "SolutionCache", "solve_cache_key"]


def solve_cache_key(
    tenant: str,
    instance_id: str,
    version: int,
    budget: Optional[float],
    payload: Dict[str, Any],
) -> Tuple[Any, ...]:
    """Stable identity of a ``by_ref`` solve for cache lookup.

    Includes every payload knob that changes the answer (algorithm, τ,
    sparsify method, seed) so a cached entry is only replayed for a
    request that would have produced the same full-fidelity response.
    """
    return (
        tenant,
        instance_id,
        int(version),
        budget,
        payload.get("algorithm", "phocus"),
        payload.get("tau"),
        payload.get("sparsify_method"),
        payload.get("seed"),
    )


class SolutionCache:
    """Byte-budgeted, TTL-bounded cache of full-fidelity solve responses."""

    def __init__(self, capacity_bytes: int = 8 << 20, ttl_seconds: float = 300.0) -> None:
        self.ttl_seconds = float(ttl_seconds)
        self._lock = threading.Lock()
        self._lru: ByteBudgetLRU = ByteBudgetLRU(capacity_bytes)

    def put(self, key: Tuple[Any, ...], response: Dict[str, Any]) -> None:
        """Store a *non-degraded* response; degraded answers never cached."""
        if "degraded" in response:
            return
        size = len(json.dumps(response, separators=(",", ":")))
        with self._lock:
            self._lru.put(key, (time.monotonic(), response), size)

    def get(self, key: Tuple[Any, ...]) -> Optional[Tuple[Dict[str, Any], float]]:
        """Return ``(response, age_seconds)`` or ``None`` (miss/expired)."""
        with self._lock:
            entry = self._lru.get(key)
            if entry is None:
                return None
            stored_at, response = entry
            age = time.monotonic() - stored_at
            if age > self.ttl_seconds:
                self._lru.pop(key)
                return None
        return response, age

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)


class BrownoutPolicy:
    """Chooses the solve tier for a request given current pressure.

    Parameters
    ----------
    tau:
        Similarity threshold for the sparsified tier (paper Theorem 4.8
        bounds the objective loss as a function of τ).
    sparsify_method:
        ``"exact"`` (threshold all pairs) or ``"lsh"`` (SimHash-verified),
        the :func:`repro.sparsify.pipeline.sparsify_instance` vocabulary.
    degrade_at / cache_at:
        Pressure thresholds for the sparsified and cached tiers.
    cache_bytes / cache_ttl_seconds:
        Bounds for the replay cache.
    """

    def __init__(
        self,
        *,
        tau: float = 0.2,
        sparsify_method: str = "exact",
        degrade_at: float = 0.7,
        cache_at: float = 0.95,
        cache_bytes: int = 8 << 20,
        cache_ttl_seconds: float = 300.0,
    ) -> None:
        if not 0.0 < degrade_at <= cache_at:
            raise ValueError("need 0 < degrade_at <= cache_at")
        self.tau = float(tau)
        self.sparsify_method = sparsify_method
        self.degrade_at = float(degrade_at)
        self.cache_at = float(cache_at)
        self.cache = SolutionCache(cache_bytes, cache_ttl_seconds)
        self._degraded_count = 0
        self._lock = threading.Lock()

    # --------------------------------------------------------------- tiers

    def tier(self, pressure: float, degraded_ok: bool) -> str:
        """``"full"``, ``"sparsified"``, or ``"cached"`` for this request."""
        if not degraded_ok or pressure < self.degrade_at:
            return "full"
        if pressure < self.cache_at:
            return "sparsified"
        return "cached"

    def _count(self, mode: str) -> None:
        with self._lock:
            self._degraded_count += 1
        obs = _obs_probes.active()
        if obs is not None:
            obs.resilience_brownout.labels(mode=mode).inc()

    # ------------------------------------------------------------- labeling

    def sparsified_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The cheaper payload for the sparsified tier (a copy)."""
        cheap = dict(payload)
        cheap["tau"] = self.tau
        cheap["sparsify_method"] = self.sparsify_method
        # A degraded answer must never carry a certificate of optimality.
        cheap.pop("certificate", None)
        return cheap

    def label_sparsified(self, response: Dict[str, Any], pressure: float) -> Dict[str, Any]:
        """Mark a sparsified-tier response as degraded, with quality metadata."""
        self._count("sparsified")
        response["degraded"] = {
            "mode": "sparsified",
            "tau": self.tau,
            "sparsify_method": self.sparsify_method,
            "pressure": round(pressure, 4),
        }
        return response

    def label_cached(
        self, response: Dict[str, Any], age_seconds: float, pressure: float
    ) -> Dict[str, Any]:
        """Mark a replayed cached response as degraded (staleness metadata)."""
        self._count("cached")
        replay = dict(response)
        replay["degraded"] = {
            "mode": "cached",
            "age_seconds": round(age_seconds, 3),
            "pressure": round(pressure, 4),
        }
        return replay

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            degraded = self._degraded_count
        return {
            "tau": self.tau,
            "sparsify_method": self.sparsify_method,
            "degrade_at": self.degrade_at,
            "cache_at": self.cache_at,
            "cached_entries": len(self.cache),
            "degraded_responses": degraded,
        }
