"""Multimodal photo similarity: visual content + EXIF context ([44]).

Section 5.1 derives SIM "using the approach in [44], which computes the
distance between two photos based on both quantitative and categorical
attributes that are derived via standard methods, including, e.g.,
reading the EXIF metadata and generating visual words via the SIFT
algorithm".  The visual half of that recipe lives in
:mod:`repro.images.features`; this module adds the metadata half and the
combination:

* **time affinity** — exponential decay in the capture-time gap (shots
  minutes apart are near-duplicates; days apart are different moments);
* **place affinity** — exponential decay in the GPS distance;
* **camera affinity** — categorical match of the camera body (a weak but
  real signal that two frames belong to the same shoot);
* **visual similarity** — cosine of the photo embeddings.

:class:`MultimodalSimilarity` blends the channels into a single ``[0, 1]``
matrix and plugs into :meth:`PARInstance.build` as a ``similarity_fn``,
reading each member's EXIF block from the photo metadata the personal
dataset generator writes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.similarity.metrics import cosine_similarity_matrix

__all__ = [
    "time_affinity",
    "place_affinity",
    "camera_affinity",
    "MultimodalSimilarity",
]

_EARTH_KM_PER_DEG = 111.0


def _parse_time(value) -> Optional[datetime]:
    if isinstance(value, datetime):
        return value
    if isinstance(value, str) and value:
        try:
            return datetime.fromisoformat(value)
        except ValueError:
            return None
    return None


def time_affinity(
    exif_a: Mapping, exif_b: Mapping, *, half_life_hours: float = 6.0
) -> float:
    """Exponential-decay closeness of two capture times (1 = same moment).

    Returns 0 when either timestamp is missing or unparseable.
    """
    ta = _parse_time(exif_a.get("timestamp"))
    tb = _parse_time(exif_b.get("timestamp"))
    if ta is None or tb is None:
        return 0.0
    gap_hours = abs((ta - tb).total_seconds()) / 3600.0
    return float(0.5 ** (gap_hours / half_life_hours))


def place_affinity(
    exif_a: Mapping, exif_b: Mapping, *, half_life_km: float = 5.0
) -> float:
    """Exponential-decay closeness of two capture locations.

    Uses the equirectangular approximation — ample for intra-event
    distances.  Returns 0 when coordinates are missing.
    """
    try:
        lat_a, lon_a = float(exif_a["latitude"]), float(exif_a["longitude"])
        lat_b, lon_b = float(exif_b["latitude"]), float(exif_b["longitude"])
    except (KeyError, TypeError, ValueError):
        return 0.0
    mean_lat = math.radians((lat_a + lat_b) / 2.0)
    dx = (lon_a - lon_b) * math.cos(mean_lat)
    dy = lat_a - lat_b
    km = math.hypot(dx, dy) * _EARTH_KM_PER_DEG
    return float(0.5 ** (km / half_life_km))


def camera_affinity(exif_a: Mapping, exif_b: Mapping) -> float:
    """1.0 for the same camera body, 0.0 otherwise (or when unknown)."""
    ca, cb = exif_a.get("camera"), exif_b.get("camera")
    if not ca or not cb:
        return 0.0
    return 1.0 if str(ca) == str(cb) else 0.0


@dataclass
class MultimodalSimilarity:
    """Blend of visual and EXIF similarity channels.

    Weights need not sum to 1; they are normalised internally.  Channels
    whose data is missing for a pair contribute 0 for that pair (the
    remaining channels are *not* re-normalised, so metadata-poor photos
    are simply "less similar" — the conservative choice for archiving).

    Instances are callables with the ``(spec, member_embeddings)``
    signature of :meth:`PARInstance.build`'s ``similarity_fn``; the photo
    EXIF blocks must be supplied via ``exif_of`` (photo id → mapping),
    typically built from photo metadata.
    """

    exif_of: Mapping[int, Mapping]
    w_visual: float = 0.6
    w_time: float = 0.2
    w_place: float = 0.1
    w_camera: float = 0.1
    half_life_hours: float = 6.0
    half_life_km: float = 5.0

    def __post_init__(self) -> None:
        total = self.w_visual + self.w_time + self.w_place + self.w_camera
        if total <= 0:
            raise ConfigurationError("at least one channel weight must be positive")
        if min(self.w_visual, self.w_time, self.w_place, self.w_camera) < 0:
            raise ConfigurationError("channel weights must be nonnegative")
        self._norm = total

    def matrix(
        self, member_ids: Sequence[int], member_embeddings: np.ndarray
    ) -> np.ndarray:
        """The blended similarity matrix for an ordered member list."""
        m = len(member_ids)
        visual = cosine_similarity_matrix(member_embeddings)
        blended = np.zeros((m, m))
        exifs = [dict(self.exif_of.get(int(p), {})) for p in member_ids]
        for i in range(m):
            for j in range(i, m):
                if i == j:
                    blended[i, j] = 1.0
                    continue
                value = self.w_visual * visual[i, j]
                value += self.w_time * time_affinity(
                    exifs[i], exifs[j], half_life_hours=self.half_life_hours
                )
                value += self.w_place * place_affinity(
                    exifs[i], exifs[j], half_life_km=self.half_life_km
                )
                value += self.w_camera * camera_affinity(exifs[i], exifs[j])
                blended[i, j] = blended[j, i] = value / self._norm
        return np.clip(blended, 0.0, 1.0)

    def __call__(self, spec, member_embeddings: np.ndarray) -> np.ndarray:
        return self.matrix(list(spec.members), member_embeddings)

    @classmethod
    def from_photos(cls, photos, **kwargs) -> "MultimodalSimilarity":
        """Build from Photo records carrying ``metadata['exif']`` blocks."""
        exif_of: Dict[int, Mapping] = {}
        for photo in photos:
            exif = photo.metadata.get("exif")
            if isinstance(exif, Mapping):
                exif_of[photo.photo_id] = exif
            elif exif is not None and hasattr(exif, "as_dict"):
                exif_of[photo.photo_id] = exif.as_dict()
        return cls(exif_of=exif_of, **kwargs)
