"""Similarity derivation: cosine metrics and contextual SIM (Section 5.1)."""

from repro.similarity.contextual import (
    ContextualSimilarity,
    context_reweighted_embeddings,
    contextual_similarity_matrix,
)
from repro.similarity.multimodal import (
    MultimodalSimilarity,
    camera_affinity,
    place_affinity,
    time_affinity,
)
from repro.similarity.metrics import (
    cosine_similarity,
    cosine_similarity_matrix,
    distances_to_similarities,
    euclidean_distance_matrix,
    unit_normalize,
)

__all__ = [
    "cosine_similarity",
    "cosine_similarity_matrix",
    "euclidean_distance_matrix",
    "distances_to_similarities",
    "unit_normalize",
    "ContextualSimilarity",
    "contextual_similarity_matrix",
    "context_reweighted_embeddings",
    "MultimodalSimilarity",
    "time_affinity",
    "place_affinity",
    "camera_affinity",
]
