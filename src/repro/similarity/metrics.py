"""Vector similarity metrics used throughout the library.

The paper measures photo similarity as the cosine similarity of image
embeddings (Section 5.1), "a common similarity metric for vector
embeddings and images in particular [38]".  All helpers here return values
clipped into ``[0, 1]`` with unit self-similarity, matching the PAR model's
contract for SIM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "unit_normalize",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "euclidean_distance_matrix",
    "distances_to_similarities",
]


def unit_normalize(vectors: np.ndarray) -> np.ndarray:
    """L2-normalise rows; zero rows are left as zeros."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValidationError("expected a 2-D (n, dim) array")
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    safe = np.where(norms == 0, 1.0, norms)
    return vectors / safe


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors, clipped into [0, 1]."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.clip((a @ b) / (na * nb), 0.0, 1.0))


def cosine_similarity_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities, clipped to [0, 1], unit diagonal.

    Negative cosines are clipped to 0 because the PAR model defines SIM
    over ``[0, 1]`` — anti-correlated embeddings are simply "not similar".
    """
    unit = unit_normalize(vectors)
    matrix = np.clip(unit @ unit.T, 0.0, 1.0)
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 1.0)
    return matrix


def euclidean_distance_matrix(vectors: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances (exact, symmetric, zero diagonal)."""
    vectors = np.asarray(vectors, dtype=np.float64)
    sq = np.sum(vectors**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (vectors @ vectors.T)
    np.fill_diagonal(d2, 0.0)
    d2 = np.maximum(d2, 0.0)
    dist = np.sqrt(d2)
    return (dist + dist.T) / 2.0


def distances_to_similarities(
    distances: np.ndarray,
    max_distance: Optional[float] = None,
) -> np.ndarray:
    """Convert distances to similarities via ``1 − d / d_max``.

    This is the per-context normalisation of Section 5.1: "dividing all
    distances by the maximum distance between any two photos in the
    context", which emphasises small variations inside granular subsets.
    When every pairwise distance is 0 the photos are identical and the
    result is all-ones.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if np.any(distances < 0):
        raise ValidationError("distances must be nonnegative")
    d_max = float(distances.max()) if max_distance is None else float(max_distance)
    if d_max <= 0:
        sims = np.ones_like(distances)
    else:
        sims = np.clip(1.0 - distances / d_max, 0.0, 1.0)
    sims = (sims + sims.T) / 2.0
    np.fill_diagonal(sims, 1.0)
    return sims
