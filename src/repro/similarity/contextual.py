"""Contextualised similarity derivation (Sections 2 and 5.1).

A key novelty of the paper is that SIM is *contextual*: "there is a
different embedding of the same photo for different predefined subsets".
We implement two composable mechanisms that produce a per-subset similarity
matrix from shared photo embeddings:

* **centroid reweighting** — the feature dimensions that vary most within
  the subset (relative to the subset centroid's magnitude) are emphasised,
  mimicking contextual-embedding methods [26, 47]: an iPhone photo's
  model-number features matter on the "iPhone models" page but not on the
  generic "smartphones" page.
* **max-distance normalisation** — distances within the context are
  divided by the maximum pairwise distance before conversion to
  similarity, so granular subsets discriminate small variations (the
  "specific Paris trip" example of Section 5.1).

:class:`ContextualSimilarity` packages a chosen mode as the
``similarity_fn`` expected by :meth:`repro.core.instance.PARInstance.build`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.similarity.metrics import (
    cosine_similarity_matrix,
    distances_to_similarities,
    euclidean_distance_matrix,
    unit_normalize,
)

__all__ = [
    "context_reweighted_embeddings",
    "contextual_similarity_matrix",
    "ContextualSimilarity",
]

_MODES = ("cosine", "centroid-reweight", "max-distance", "reweight+normalise")


def context_reweighted_embeddings(
    member_embeddings: np.ndarray,
    *,
    strength: float = 1.0,
) -> np.ndarray:
    """Re-embed subset members with context-emphasised feature dimensions.

    Dimension ``d`` receives weight proportional to the within-subset
    standard deviation of that dimension (softly blended with uniform
    weights by ``strength``).  Dimensions on which every member agrees
    carry no discriminating information *inside* this context and are
    damped; dimensions that differentiate members are amplified.

    ``strength = 0`` returns the embeddings unchanged; ``strength = 1``
    applies the full reweighting.
    """
    member_embeddings = np.asarray(member_embeddings, dtype=np.float64)
    if member_embeddings.ndim != 2:
        raise ConfigurationError("expected (m, dim) member embeddings")
    if not (0.0 <= strength <= 1.0):
        raise ConfigurationError("strength must lie in [0, 1]")
    if member_embeddings.shape[0] < 2:
        return member_embeddings.copy()
    spread = member_embeddings.std(axis=0)
    total = float(spread.sum())
    dim = member_embeddings.shape[1]
    if total <= 0:
        weights = np.ones(dim)
    else:
        # Scale so the weights average to 1 (keeps magnitudes comparable).
        weights = spread * (dim / total)
    blended = (1.0 - strength) * np.ones(dim) + strength * weights
    return member_embeddings * np.sqrt(blended)


def contextual_similarity_matrix(
    member_embeddings: np.ndarray,
    mode: str = "reweight+normalise",
    *,
    strength: float = 1.0,
) -> np.ndarray:
    """Similarity matrix of a subset's members under a contextual mode.

    Modes
    -----
    ``"cosine"``
        Plain (non-contextual) cosine similarity — what the Greedy-NCS
        baseline uses for every subset.
    ``"centroid-reweight"``
        Cosine similarity of the context-reweighted embeddings.
    ``"max-distance"``
        ``1 − d/d_max`` over Euclidean distances of the unit-normalised
        embeddings (Section 5.1 normalisation).
    ``"reweight+normalise"``
        Both mechanisms composed (reweight, then distance-normalise) —
        the full contextual SIM used by the dataset generators.
    """
    member_embeddings = np.asarray(member_embeddings, dtype=np.float64)
    if mode not in _MODES:
        raise ConfigurationError(f"unknown contextual mode {mode!r}; choose from {_MODES}")
    if mode == "cosine":
        return cosine_similarity_matrix(member_embeddings)
    if mode == "centroid-reweight":
        return cosine_similarity_matrix(
            context_reweighted_embeddings(member_embeddings, strength=strength)
        )
    if mode == "max-distance":
        unit = unit_normalize(member_embeddings)
        return distances_to_similarities(euclidean_distance_matrix(unit))
    reweighted = context_reweighted_embeddings(member_embeddings, strength=strength)
    unit = unit_normalize(reweighted)
    return distances_to_similarities(euclidean_distance_matrix(unit))


@dataclass
class ContextualSimilarity:
    """A configured contextual-similarity derivation.

    Instances are callables with the ``(spec, member_embeddings)``
    signature that :meth:`PARInstance.build` expects for its
    ``similarity_fn`` argument.
    """

    mode: str = "reweight+normalise"
    strength: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown contextual mode {self.mode!r}; choose from {_MODES}"
            )

    def __call__(self, spec, member_embeddings: np.ndarray) -> np.ndarray:
        return contextual_similarity_matrix(
            member_embeddings, self.mode, strength=self.strength
        )
