"""The end-to-end PHOcus system (Figure 4).

Mirrors the paper's architecture: a **Data Representation Module** that
turns raw user input into a validated PAR instance, and a **Solver** that
runs the optimisation.  The three input modes of Section 5.1 are all
supported:

1. **direct** — photos arrive already tagged with their subsets (plus
   optional per-photo relevance adjustments);
2. **queries** — the user supplies weighted natural-language queries and
   per-photo descriptive text; the internal search engine computes the
   subsets and relevance scores;
3. **automatic** — subsets are derived from photo metadata by automatic
   tagging (label lists, EXIF date/place buckets).

The solver stage applies optional τ-sparsification (exact or LSH), runs a
registered algorithm (Algorithm 1 by default), and reports the solution
together with the data-dependent certificates of Section 4.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.bounds import online_bound, sparsification_bound
from repro.core.instance import PARInstance, Photo, SubsetSpec
from repro.core.objective import score, score_breakdown
from repro.core.solver import Solution, solve
from repro.errors import ConfigurationError, ValidationError
from repro.images.exif import ExifRecord, geo_bucket, time_bucket
from repro.search.engine import SearchEngine
from repro.similarity.contextual import ContextualSimilarity
from repro.sparsify.pipeline import SparsifyReport, sparsify_instance

__all__ = ["PhocusConfig", "ArchiveReport", "DataRepresentationModule", "PHOcus"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PhocusConfig:
    """Solver-stage configuration.

    ``tau = 0`` disables sparsification (the PHOcus-NS variant);
    ``sparsify_method`` selects exact thresholding or SimHash LSH.
    """

    algorithm: str = "phocus"
    tau: float = 0.0
    sparsify_method: str = "exact"
    lsh_bits: int = 64
    lsh_target_recall: float = 0.95
    contextual_mode: str = "reweight+normalise"
    certificate: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not (0.0 <= self.tau <= 1.0):
            raise ConfigurationError("tau must lie in [0, 1]")


@dataclass
class ArchiveReport:
    """Everything PHOcus tells the analyst after a run."""

    solution: Solution
    retained_count: int
    archived_count: int
    budget_utilisation: float
    subset_scores: Dict[str, float]
    sparsify: Optional[SparsifyReport] = None
    sparsification_guarantee: Optional[float] = None
    optimum_upper_bound: Optional[float] = None
    prep_seconds: float = 0.0

    @property
    def worst_covered_subsets(self) -> List[Tuple[str, float]]:
        """Subsets with the lowest achieved score — where quality was paid."""
        return sorted(self.subset_scores.items(), key=lambda kv: kv[1])[:5]


class DataRepresentationModule:
    """Figure 4's left box: raw input → validated :class:`PARInstance`."""

    def __init__(self, contextual_mode: str = "reweight+normalise") -> None:
        self.contextual_mode = contextual_mode

    def _build(
        self,
        photos: Sequence[Photo],
        specs: Sequence[SubsetSpec],
        embeddings: np.ndarray,
        budget: float,
        retained: Iterable[int],
    ) -> PARInstance:
        if not specs:
            raise ValidationError("input produced no pre-defined subsets")
        return PARInstance.build(
            photos,
            specs,
            budget,
            retained=retained,
            embeddings=embeddings,
            similarity_fn=ContextualSimilarity(self.contextual_mode),
        )

    def from_tags(
        self,
        photos: Sequence[Photo],
        embeddings: np.ndarray,
        tags: Mapping[str, Sequence[int]],
        budget: float,
        *,
        weights: Optional[Mapping[str, float]] = None,
        relevance: Optional[Mapping[str, Sequence[float]]] = None,
        retained: Iterable[int] = (),
    ) -> PARInstance:
        """Input mode 1 (direct): subsets given as tag → photo-id lists.

        Relevance defaults to uniform within each subset (as the paper
        specifies) and may be adjusted per tag; weights default to 1.
        """
        specs = []
        for tag, members in tags.items():
            if not len(members):
                continue
            rel = (
                list(relevance[tag])
                if relevance and tag in relevance
                else [1.0] * len(members)
            )
            weight = float(weights.get(tag, 1.0)) if weights else 1.0
            specs.append(SubsetSpec(tag, weight, list(members), rel))
        return self._build(photos, specs, embeddings, budget, retained)

    def from_queries(
        self,
        photos: Sequence[Photo],
        embeddings: np.ndarray,
        photo_texts: Mapping[int, str],
        weighted_queries: Sequence[Tuple[str, float]],
        budget: float,
        *,
        top_k: Optional[int] = None,
        retained: Iterable[int] = (),
    ) -> PARInstance:
        """Input mode 2 (queries): subsets computed by the search engine."""
        engine = SearchEngine()
        for photo in photos:
            text = photo_texts.get(photo.photo_id, photo.label)
            if text and text.strip():
                engine.add_photo(photo.photo_id, text)
        specs = engine.subsets_for_queries(weighted_queries, top_k=top_k)
        return self._build(photos, specs, embeddings, budget, retained)

    def from_metadata(
        self,
        photos: Sequence[Photo],
        embeddings: np.ndarray,
        budget: float,
        *,
        retained: Iterable[int] = (),
        min_subset_size: int = 2,
    ) -> PARInstance:
        """Input mode 3 (automatic tagging): subsets from photo metadata.

        Derives tags from ``metadata['labels']`` lists and — when an
        ``metadata['exif']`` block is present — from day and coarse-place
        buckets, the way image-tagging software organises personal photos
        (Section 1).
        """
        tags: Dict[str, List[int]] = {}
        for photo in photos:
            for label in photo.metadata.get("labels", ()) or ():
                tags.setdefault(str(label), []).append(photo.photo_id)
            exif = photo.metadata.get("exif")
            if isinstance(exif, ExifRecord):
                tags.setdefault(time_bucket(exif), []).append(photo.photo_id)
                tags.setdefault(geo_bucket(exif), []).append(photo.photo_id)
            elif isinstance(exif, Mapping) and "timestamp" in exif:
                day = str(exif["timestamp"])[:10]
                tags.setdefault(day, []).append(photo.photo_id)
        tags = {t: ms for t, ms in tags.items() if len(ms) >= min_subset_size}
        # Weight automatic tags by how many photos they organise.
        weights = {t: float(len(ms)) for t, ms in tags.items()}
        return self.from_tags(
            photos, embeddings, tags, budget, weights=weights, retained=retained
        )


class PHOcus:
    """Figure 4's full pipeline: representation module + solver + report."""

    def __init__(self, config: PhocusConfig = PhocusConfig()) -> None:
        self.config = config
        self.representation = DataRepresentationModule(config.contextual_mode)

    def run(self, instance: PARInstance) -> ArchiveReport:
        """Solve a prepared instance and assemble the analyst report."""
        config = self.config
        rng = np.random.default_rng(config.seed)

        logger.info(
            "PHOcus run: n=%d subsets=%d budget=%.0f algorithm=%s tau=%.2f",
            instance.n, len(instance.subsets), instance.budget,
            config.algorithm, config.tau,
        )
        prep_start = time.perf_counter()
        sparsify_report: Optional[SparsifyReport] = None
        guarantee: Optional[float] = None
        solver_instance = instance
        if config.tau > 0.0:
            solver_instance, sparsify_report = sparsify_instance(
                instance,
                config.tau,
                method=config.sparsify_method,
                n_bits=config.lsh_bits,
                target_recall=config.lsh_target_recall,
                rng=rng,
            )
            guarantee = sparsification_bound(instance, config.tau).factor
        prep_seconds = time.perf_counter() - prep_start

        solution = solve(
            solver_instance,
            config.algorithm,
            certificate=False,
            rng=rng,
        )
        # Always report the TRUE (non-sparsified) objective and certificates.
        true_value = score(instance, solution.selection)
        solution = Solution(
            algorithm=solution.algorithm,
            selection=solution.selection,
            value=true_value,
            cost=solution.cost,
            budget=instance.budget,
            elapsed_seconds=solution.elapsed_seconds,
            extras=solution.extras,
        )
        bound: Optional[float] = None
        if config.certificate:
            bound = online_bound(instance, solution.selection)
            solution.ratio_certificate = (
                1.0 if bound <= 0 else min(1.0, true_value / bound)
            )
        logger.info(
            "PHOcus done: kept=%d value=%.4f cost=%.0f/%.0f solve=%.2fs",
            len(solution.selection), true_value, solution.cost,
            instance.budget, solution.elapsed_seconds,
        )
        return ArchiveReport(
            solution=solution,
            retained_count=len(solution.selection),
            archived_count=instance.n - len(solution.selection),
            budget_utilisation=solution.budget_utilisation,
            subset_scores=score_breakdown(instance, solution.selection),
            sparsify=sparsify_report,
            sparsification_guarantee=guarantee,
            optimum_upper_bound=bound,
            prep_seconds=prep_seconds,
        )
