"""HTTP solver service — the paper's "Python and Flask" Solver deployment.

Section 5.1: "Solver is implemented using Python and Flask."  Flask is a
third-party dependency this offline reproduction avoids, so the service
is built on the standard library's threading HTTP server with the same
tiny JSON API a Flask app would expose:

===========  =======  ====================================================
endpoint     method   behaviour
===========  =======  ====================================================
``/health``  GET      liveness + library version
``/algorithms``  GET  the registered solver names
``/solve``   POST     body ``{"instance": …, "algorithm"?, "tau"?,
                      "sparsify_method"?, "certificate"?}`` →
                      the solution plus sparsification diagnostics
``/score``   POST     body ``{"instance": …, "selection": [...]}`` →
                      objective value and per-subset breakdown
===========  =======  ====================================================

Instances travel in the :mod:`repro.core.serialize` wire format.  Errors
return ``4xx`` with ``{"error": message}``; unexpected failures ``500``.

Use :class:`PhocusService` as a context manager for an ephemeral server::

    with PhocusService() as service:
        requests.post(f"http://{service.address}/solve", json=payload)
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.objective import score, score_breakdown
from repro.core.serialize import (
    instance_from_dict,
    solution_to_dict,
)
from repro.core.solver import available_algorithms, solve
from repro.errors import ReproError, ValidationError
from repro.sparsify.pipeline import sparsify_instance

__all__ = ["PhocusService", "handle_request"]

_MAX_BODY = 64 * 1024 * 1024  # 64 MiB — generous for serialised instances


def _solve_endpoint(payload: Dict[str, Any]) -> Dict[str, Any]:
    instance = instance_from_dict(_require(payload, "instance", dict))
    algorithm = payload.get("algorithm", "phocus")
    tau = float(payload.get("tau", 0.0))
    method = payload.get("sparsify_method", "exact")
    certificate = bool(payload.get("certificate", False))
    seed = payload.get("seed")
    rng = np.random.default_rng(seed)

    solver_instance = instance
    sparsify_doc: Optional[Dict[str, Any]] = None
    if tau > 0.0:
        solver_instance, report = sparsify_instance(
            instance, tau, method=method, rng=rng
        )
        sparsify_doc = {
            "tau": report.tau,
            "method": report.method,
            "kept_fraction": report.kept_fraction,
            "checked_fraction": report.checked_fraction,
        }
    solution = solve(solver_instance, algorithm, rng=rng)
    true_value = (
        solution.value
        if solver_instance is instance
        else score(instance, solution.selection)
    )
    solution.value = true_value
    if certificate:
        from repro.core.bounds import online_bound

        bound = online_bound(instance, solution.selection)
        solution.ratio_certificate = (
            1.0 if bound <= 0 else min(1.0, true_value / bound)
        )
    doc = solution_to_dict(solution)
    doc["sparsify"] = sparsify_doc
    return doc


def _score_endpoint(payload: Dict[str, Any]) -> Dict[str, Any]:
    instance = instance_from_dict(_require(payload, "instance", dict))
    selection = _require(payload, "selection", list)
    return {
        "value": score(instance, selection),
        "cost": instance.cost_of(selection),
        "feasible": instance.feasible(selection),
        "breakdown": score_breakdown(instance, selection),
    }


def _require(payload: Dict[str, Any], key: str, kind) -> Any:
    value = payload.get(key)
    if not isinstance(value, kind):
        raise ValidationError(f"request body needs {key!r} of type {kind.__name__}")
    return value


def handle_request(
    method: str, path: str, body: Optional[bytes]
) -> Tuple[int, Dict[str, Any]]:
    """Pure request dispatcher (transport-independent, directly testable).

    Returns ``(http_status, json_payload)``.
    """
    try:
        if method == "GET" and path == "/health":
            from repro import __version__

            return 200, {"status": "ok", "version": __version__}
        if method == "GET" and path == "/algorithms":
            return 200, {"algorithms": available_algorithms()}
        if method == "POST" and path in ("/solve", "/score"):
            if not body:
                return 400, {"error": "empty request body"}
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON: {exc}"}
            if not isinstance(payload, dict):
                return 400, {"error": "request body must be a JSON object"}
            endpoint = _solve_endpoint if path == "/solve" else _score_endpoint
            return 200, endpoint(payload)
        return 404, {"error": f"no route for {method} {path}"}
    except ReproError as exc:
        return 422, {"error": str(exc)}
    except Exception as exc:  # noqa: BLE001 - service boundary
        return 500, {"error": f"internal error: {exc}"}


class _Handler(BaseHTTPRequestHandler):
    server_version = "PHOcus/1.0"

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, payload = handle_request("GET", self.path, None)
        self._reply(status, payload)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._reply(413, {"error": "request body too large"})
            return
        body = self.rfile.read(length) if length else b""
        status, payload = handle_request("POST", self.path, body)
        self._reply(status, payload)

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        return


class PhocusService:
    """An embeddable PHOcus solver server.

    ``port=0`` (default) binds an ephemeral port; read the bound address
    from :attr:`address`.  Use as a context manager or call
    :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "PhocusService":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="phocus-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "PhocusService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
