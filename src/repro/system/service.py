"""HTTP solver service — the paper's "Python and Flask" Solver deployment.

Section 5.1: "Solver is implemented using Python and Flask."  Flask is a
third-party dependency this offline reproduction avoids, so the service
is built on the standard library's threading HTTP server with the same
tiny JSON API a Flask app would expose:

================  =======  ================================================
endpoint          method   behaviour
================  =======  ================================================
``/health``       GET      liveness + library version
``/healthz``      GET      bare liveness (no locks, no subsystems)
``/readyz``       GET      readiness — 503 while the service drains or
                           the admission controller saturates, so load
                           balancers stop routing here; 200 otherwise
``/version``      GET      library version only
``/algorithms``   GET      the registered solver names
``/solve``        POST     synchronous fast path: body ``{"instance": …,
                           "algorithm"?, "tau"?, "sparsify_method"?,
                           "certificate"?}`` → solution + diagnostics
``/score``        POST     body ``{"instance": …, "selection": [...]}`` →
                           objective value and per-subset breakdown
``/jobs``         POST     submit an async solve job (same body as
                           ``/solve`` plus ``tenant``/``priority``/
                           ``timeout_seconds``/``max_attempts``/
                           ``checkpoint_every``) → 202 with the job id;
                           429 when the queue is full
``/jobs``         GET      list jobs (``?state=``/``?tenant=`` filters)
``/jobs/<id>``    GET      job status, including the result when done
                           and ``checkpoint_progress`` while running
``/jobs/<id>``    DELETE   cancel a queued or running job
``/stats``        GET      queue depth, per-state counts, worker
                           utilisation, solve-latency percentiles,
                           failure-classification tallies
``/metrics``      GET      Prometheus text exposition (format 0.0.4) of
                           the process metrics registry — solver, jobs,
                           checkpoint, tenants, and HTTP series; 404 when
                           the service runs with metrics disabled
================  =======  ================================================

With a tenant store configured (``tenants_root=...``), the multi-tenant
archive API is also served:

=================================  ==========  ===========================
``/tenants/<t>/instances/<i>``     PUT         upload/overwrite a stored
                                               instance (201 on create);
                                               413 over quota, 429 over
                                               rate
``/tenants/<t>/instances/<i>``     GET/DELETE  fetch / remove the stored
                                               envelope
``/tenants/<t>/instances``         GET         list stored instance
                                               metadata
``/tenants/<t>/stats``             GET         store + warm-cache + quota
                                               view for one tenant
``.../instances/<i>/live``         POST        build + store (and cold
                                               solve) a *live* archive
                                               from costs/embeddings
``.../instances/<i>/live``         GET         curation status: version,
                                               pending deltas,
                                               ``recurated_at``,
                                               ``regret_bound``, solution
``.../instances/<i>/photos``       POST        ingest a photo delta as
                                               one atomic version bump;
                                               warm re-solve inline
                                               (``resolve="warm"``) or
                                               defer to the sweep
``.../instances/<i>/recurate``     POST        force a warm/full
                                               re-solve; 409 if an
                                               ingest raced it
=================================  ==========  ===========================

and ``POST /solve``, ``/score``, and ``/jobs`` accept ``{"by_ref":
{"tenant", "instance_id", "version"?}}`` in place of ``"instance"`` —
the instance is resolved from the store through the shared-memory warm
cache, so repeated solves of the same stored instance skip both
deserialisation and packing (``/solve`` responses report
``warm_cache_hit``).

Instances travel in the :mod:`repro.core.serialize` wire format.  Errors
return ``4xx`` with ``{"error": message}`` (plus structured fields for
404/413/429); a wrong method on a known path yields ``405`` with the
allowed methods in the body's ``allow`` field; unexpected failures
``500``.

Overload resilience is opt-in via ``resilience=Resilience(...)``
(:mod:`repro.resilience`): request deadlines (``X-Phocus-Deadline-Ms``
header or ``deadline_ms`` body field) propagate into the solver hot
loops and expire as structured ``504`` responses; the admission
controller sheds with ``503`` + a ``Retry-After`` header before queues
saturate; ``degraded_ok: true`` bodies may receive labeled brownout
answers under pressure; and :meth:`PhocusService.drain` runs the
SIGTERM sequence (stop accepting → checkpoint running jobs → release
leases → flush).  A full disk during a durable write answers a
structured ``507``.  Without a bundle the service behaves exactly as
before.

Observability: constructing a service with ``metrics=True`` (the
default) arms :mod:`repro.obs.probes` process-wide, so solver and job
telemetry flows into the registry ``GET /metrics`` serves.  Every
request is also counted/timed per route
(:func:`repro.obs.middleware.observe_request`), and ``access_log=True``
replaces the historically silent ``log_message`` with one structured
JSON line per request on stderr (off by default — the service stays
quiet unless asked).

Use :class:`PhocusService` as a context manager for an ephemeral server::

    with PhocusService() as service:
        requests.post(f"http://{service.address}/jobs", json=payload)
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from contextlib import ExitStack, contextmanager

from repro.core.objective import score, score_breakdown
from repro.core.serialize import instance_from_dict
from repro.core.solver import available_algorithms
from repro.errors import (
    DeadlineExceeded,
    InstanceNotFound,
    QuotaExceeded,
    RateLimited,
    ReproError,
    ServiceOverloaded,
    StorageExhausted,
    ValidationError,
)
from repro.jobs import JobManager, JobState, QueueFull, execute_solve_payload
from repro.jobs.spec import JobSpec, new_job_id
from repro.live import LiveManager, RecurationScheduler
from repro.live.manager import DEFAULT_MAX_RESIDENT
from repro.obs import probes as obs_probes
from repro.obs.middleware import AccessLog, observe_request
from repro.obs.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prom import render_registry
from repro.resilience import Resilience, deadline_scope, solve_cache_key
from repro.tenants import TenantQuota, Tenants, parse_ref

__all__ = ["PhocusService", "handle_request"]

_DEADLINE_HEADER = "X-Phocus-Deadline-Ms"

# Sentinel keys in a dispatcher payload marking a non-JSON (raw text)
# response; the transport handler honours them, tests can assert on them.
RAW_BODY = "__raw__"
RAW_CONTENT_TYPE = "__content_type__"

_MAX_BODY = 64 * 1024 * 1024  # 64 MiB — generous for serialised instances

# Route table: exact path (or the /jobs/<id> prefix) → allowed methods.
# Wrong method on a known path is a 405 with these in the "allow" field.
_ALLOWED_METHODS: Dict[str, Tuple[str, ...]] = {
    "/health": ("GET",),
    "/healthz": ("GET",),
    "/readyz": ("GET",),
    "/version": ("GET",),
    "/algorithms": ("GET",),
    "/solve": ("POST",),
    "/score": ("POST",),
    "/fidelity/frontier": ("POST",),
    "/jobs": ("GET", "POST"),
    "/jobs/<id>": ("DELETE", "GET"),
    "/stats": ("GET",),
    "/metrics": ("GET",),
    "/tenants/<id>/instances": ("GET",),
    "/tenants/<id>/instances/<iid>": ("DELETE", "GET", "PUT"),
    "/tenants/<id>/instances/<iid>/live": ("GET", "POST"),
    "/tenants/<id>/instances/<iid>/photos": ("POST",),
    "/tenants/<id>/instances/<iid>/recurate": ("POST",),
    "/tenants/<id>/stats": ("GET",),
}

# Live-curation sub-resources under /tenants/<id>/instances/<iid>/.
_LIVE_TAILS = ("live", "photos", "recurate")


def _tenants_route_key(path: str) -> Optional[str]:
    """Map a ``/tenants/...`` path to its route-table key (None = no route)."""
    tail = path.split("/")[2:]  # ["<tid>", ...]
    if len(tail) == 2 and tail[1] == "stats":
        return "/tenants/<id>/stats"
    if len(tail) == 2 and tail[1] == "instances":
        return "/tenants/<id>/instances"
    if len(tail) == 3 and tail[1] == "instances":
        return "/tenants/<id>/instances/<iid>"
    if len(tail) == 4 and tail[1] == "instances" and tail[3] in _LIVE_TAILS:
        return f"/tenants/<id>/instances/<iid>/{tail[3]}"
    return None


@contextmanager
def _resolved_instance(payload: Dict[str, Any], tenants: Optional[Tenants]):
    """Yield ``(PARInstance-or-None, warm_hit-or-None)`` for a request body.

    ``None`` instance means the body carries an inline ``instance``
    document — the caller's existing path handles it.  A ``by_ref`` body
    is rate-checked and resolved through the tenant store + warm cache;
    the yielded instance stays valid (cache lease held) for the whole
    ``with`` block, i.e. across the solve.
    """
    by_ref = payload.get("by_ref")
    if by_ref is None:
        yield None, None
        return
    if "instance" in payload:
        raise ValidationError("give either 'instance' or 'by_ref', not both")
    if tenants is None:
        raise ValidationError("no tenant store configured on this service")
    budget = payload.get("budget")
    if budget is not None:
        budget = float(budget)
        if not budget > 0:
            raise ValidationError("'budget' override must be positive")
    tenant, _, _ = parse_ref(by_ref)
    tenants.check_rate(tenant)
    with tenants.lease_for_solve(by_ref, budget=budget) as (instance, hit):
        yield instance, hit


def _deadline_ms_from(
    headers: Optional[Any], payload: Optional[Dict[str, Any]] = None
) -> Optional[float]:
    """The request's deadline in ms: header beats body field, ``None`` if absent."""
    raw: Any = headers.get(_DEADLINE_HEADER) if headers is not None else None
    if raw is None and payload is not None:
        raw = payload.get("deadline_ms")
    if raw is None:
        return None
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValidationError(
            f"deadline must be a number of milliseconds, got {raw!r}"
        ) from None
    if not value > 0:
        raise ValidationError("deadline_ms must be positive")
    return value


def _request_tenant(payload: Dict[str, Any]) -> str:
    """The tenant a request bills against (``by_ref`` beats the body field)."""
    by_ref = payload.get("by_ref")
    if isinstance(by_ref, dict) and by_ref.get("tenant"):
        return str(by_ref["tenant"])
    return str(payload.get("tenant") or "default")


def _brownout_cache_key(
    payload: Dict[str, Any], tenants: Optional[Tenants]
) -> Optional[Tuple[Any, ...]]:
    """The brownout-cache identity of a ``by_ref`` solve (inline bodies: None)."""
    by_ref = payload.get("by_ref")
    if by_ref is None or tenants is None:
        return None
    try:
        tenant, instance_id, version = parse_ref(by_ref)
        if version is None:
            version = tenants.store.meta(tenant, instance_id).version
        budget = payload.get("budget")
        return solve_cache_key(
            tenant,
            instance_id,
            int(version),
            None if budget is None else float(budget),
            payload,
        )
    except Exception:  # noqa: BLE001 - cache identity is best-effort
        return None


def _solve_endpoint(
    payload: Dict[str, Any],
    tenants: Optional[Tenants],
    resilience: Optional[Resilience] = None,
) -> Dict[str, Any]:
    # The synchronous fast path and background jobs share one executor
    # (repro.jobs.worker.execute_solve_payload) so they can never drift.
    degraded_ok = bool(payload.pop("degraded_ok", False))
    brownout = resilience.brownout if resilience is not None else None
    pressure = resilience.pressure() if resilience is not None else 0.0
    tier = brownout.tier(pressure, degraded_ok) if brownout is not None else "full"
    cache_key = _brownout_cache_key(payload, tenants) if brownout is not None else None
    if tier == "cached":
        entry = brownout.cache.get(cache_key) if cache_key is not None else None
        if entry is not None:
            response, age = entry
            return brownout.label_cached(response, age, pressure)
        tier = "sparsified"  # nothing to replay — next-cheapest real answer
    solve_payload = (
        brownout.sparsified_payload(payload) if tier == "sparsified" else payload
    )
    with _resolved_instance(solve_payload, tenants) as (instance, hit):
        doc = execute_solve_payload(solve_payload, instance=instance)
    if hit is not None:
        doc["warm_cache_hit"] = hit
    if tier == "sparsified":
        return brownout.label_sparsified(doc, pressure)
    if cache_key is not None:
        brownout.cache.put(cache_key, doc)
    return doc


def _score_endpoint(
    payload: Dict[str, Any], tenants: Optional[Tenants]
) -> Dict[str, Any]:
    fidelity = payload.get("fidelity")
    if fidelity is None:
        selection = _require(payload, "selection", list)
    with _resolved_instance(payload, tenants) as (instance, _hit):
        if instance is None:
            instance = instance_from_dict(_require(payload, "instance", dict))
        if fidelity is not None:
            # Multi-fidelity scoring: the policy's 'chosen' records name
            # one variant per photo; see repro.fidelity.policy.
            from repro.fidelity.policy import score_fidelity_payload

            return score_fidelity_payload(fidelity, instance=instance)
        return {
            "value": score(instance, selection),
            "cost": instance.cost_of(selection),
            "feasible": instance.feasible(selection),
            "breakdown": score_breakdown(instance, selection),
        }


def _fidelity_frontier_endpoint(
    payload: Dict[str, Any], tenants: Optional[Tenants]
) -> Dict[str, Any]:
    """``POST /fidelity/frontier`` — a budget-vs-quality sweep.

    Body: an instance source (inline ``instance`` or ``by_ref``), a
    ``budgets`` list (top-level or inside the ``fidelity`` policy), and
    optionally the rest of the fidelity policy vocabulary.
    """
    policy = dict(payload.get("fidelity") or {})
    if payload.get("budgets") is not None:
        policy["budgets"] = payload["budgets"]
    if policy.get("budgets") is None:
        raise ValidationError("frontier sweep needs a 'budgets' list")
    from repro.fidelity.policy import execute_fidelity_payload

    with _resolved_instance(payload, tenants) as (instance, _hit):
        if instance is None:
            instance = instance_from_dict(_require(payload, "instance", dict))
        return execute_fidelity_payload(policy, instance=instance)


def _require(payload: Dict[str, Any], key: str, kind) -> Any:
    value = payload.get(key)
    if not isinstance(value, kind):
        raise ValidationError(f"request body needs {key!r} of type {kind.__name__}")
    return value


def _parse_body(body: Optional[bytes]) -> Tuple[Optional[Dict[str, Any]], Optional[Tuple[int, Dict[str, Any]]]]:
    if not body:
        return None, (400, {"error": "empty request body"})
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return None, (400, {"error": f"invalid JSON: {exc}"})
    if not isinstance(payload, dict):
        return None, (400, {"error": "request body must be a JSON object"})
    return payload, None


def _submit_job(
    payload: Dict[str, Any],
    jobs: JobManager,
    tenants: Optional[Tenants],
    resilience: Optional[Resilience] = None,
) -> Tuple[int, Dict[str, Any]]:
    by_ref_doc = payload.get("by_ref")
    if by_ref_doc is not None:
        if "instance" in payload:
            raise ValidationError("give either 'instance' or 'by_ref', not both")
        if tenants is None:
            raise ValidationError("no tenant store configured on this service")
        instance_doc = None
        ref_tenant, instance_id, version = parse_ref(by_ref_doc)
        tenants.check_rate(ref_tenant)
        # Validate existence now (404 beats a failed job later) and pin
        # the version so retries and journal replays are deterministic
        # even if the instance is overwritten while the job waits.
        meta = tenants.store.meta(ref_tenant, instance_id)
        by_ref_doc = {
            "tenant": ref_tenant,
            "instance_id": instance_id,
            "version": version if version is not None else meta.version,
        }
        default_tenant = ref_tenant
    else:
        instance_doc = _require(payload, "instance", dict)
        default_tenant = "default"
    timeout_seconds = payload.get("timeout_seconds")
    deadline_ms = payload.get("deadline_ms")
    try:
        spec = JobSpec(
            job_id=new_job_id(),
            instance=instance_doc,
            by_ref=by_ref_doc,
            tenant=str(payload.get("tenant") or default_tenant),
            algorithm=str(payload.get("algorithm") or "phocus"),
            tau=float(payload.get("tau") or 0.0),
            sparsify_method=str(payload.get("sparsify_method") or "exact"),
            certificate=bool(payload.get("certificate", False)),
            seed=payload.get("seed"),
            priority=int(payload.get("priority") or 0),
            timeout_seconds=(
                float(timeout_seconds) if timeout_seconds is not None else None
            ),
            deadline_ms=(float(deadline_ms) if deadline_ms is not None else None),
            max_attempts=int(payload.get("max_attempts") or 3),
            checkpoint_every=(
                int(payload["checkpoint_every"])
                if payload.get("checkpoint_every") is not None
                else None
            ),
            budgets=(
                tuple(float(b) for b in payload["budgets"])
                if payload.get("budgets") is not None
                else None
            ),
            parallel_workers=(
                int(payload["parallel_workers"])
                if payload.get("parallel_workers") is not None
                else None
            ),
            fidelity=payload.get("fidelity"),
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ValidationError):
            raise
        raise ValidationError(f"malformed job parameters: {exc}") from exc
    admission = resilience.admission if resilience is not None else None
    if admission is not None:
        # Shed *before* the hard 429 bound: predicted queue wait and the
        # shed_queue_fraction watermark both fire as 503 + Retry-After.
        admission.check_queue(
            spec.tenant, depth=jobs.queue_depth, limit=jobs.queue_limit
        )
    try:
        job_id = jobs.submit(spec)
    except QueueFull as exc:
        return 429, {
            "error": str(exc),
            "queue_depth": exc.depth,
            "queue_limit": exc.maxsize,
            "retry_after": (
                admission.snapshot()["retry_after_seconds"]
                if admission is not None
                else 1.0
            ),
        }
    return 202, {"job_id": job_id, "state": JobState.QUEUED.value}


def _tenants_routes(
    method: str,
    path: str,
    body: Optional[bytes],
    tenants: Optional[Tenants],
) -> Tuple[int, Dict[str, Any]]:
    if tenants is None:
        return 503, {"error": "no tenant store configured on this service"}
    tail = path.split("/")[2:]
    tenant = tail[0]
    if tail[1] == "stats":
        return 200, tenants.stats(tenant)
    if len(tail) == 2:  # GET /tenants/<id>/instances
        return 200, {
            "tenant": tenant,
            "instances": [m.to_dict() for m in tenants.list_instances(tenant)],
        }
    instance_id = tail[2]
    tenants.check_rate(tenant)
    if method == "PUT":
        payload, err = _parse_body(body)
        if err is not None:
            return err
        instance_doc = _require(payload, "instance", dict)
        meta = tenants.put_instance(tenant, instance_id, instance_doc)
        return (201 if meta.version == 1 else 200), {"stored": meta.to_dict()}
    if method == "GET":
        return 200, tenants.get_instance(tenant, instance_id)
    # DELETE
    meta = tenants.delete_instance(tenant, instance_id)
    return 200, {"deleted": meta.to_dict()}


def _parse_photos(payload: Dict[str, Any]):
    """Decode the ``costs``/``embeddings`` arrays of a live request body."""
    import numpy as np

    costs = _require(payload, "costs", list)
    embeddings = _require(payload, "embeddings", list)
    try:
        costs_arr = np.asarray(costs, dtype=np.float64)
        emb_arr = np.asarray(embeddings, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"costs/embeddings are not numeric arrays: {exc}")
    if costs_arr.ndim != 1:
        raise ValidationError("'costs' must be a flat list of numbers")
    if emb_arr.ndim != 2:
        raise ValidationError("'embeddings' must be a list of equal-length rows")
    return costs_arr, emb_arr


def _live_routes(
    method: str,
    path: str,
    body: Optional[bytes],
    tenants: Optional[Tenants],
    live,
    sweeper=None,
) -> Tuple[int, Dict[str, Any]]:
    """The online-curation sub-resources of a stored instance.

    ``POST .../live`` builds + stores (and by default cold-solves) a live
    archive; ``GET .../live`` reports curation status including the
    current solution, ``recurated_at`` and ``regret_bound``;
    ``POST .../photos`` ingests a delta as one atomic version bump;
    ``POST .../recurate`` forces a warm or full re-solve (409 when a
    concurrent ingest moved the version underneath it).
    """
    if tenants is None:
        return 503, {"error": "no tenant store configured on this service"}
    if live is None:
        return 503, {"error": "live curation is not enabled on this service"}
    tail = path.split("/")[2:]
    tenant, instance_id, action = tail[0], tail[2], tail[3]
    tenants.check_rate(tenant)
    if action == "live" and method == "GET":
        status = live.status(tenant, instance_id)
        doc = status.to_dict()
        doc["solution"] = status.solution
        return 200, doc
    if action == "recurate":
        payload: Dict[str, Any] = {}
        if body:
            parsed, err = _parse_body(body)
            if err is not None:
                return err
            payload = parsed
        doc = live.recurate(
            tenant, instance_id, kind=str(payload.get("kind", "warm"))
        )
        if doc is None:
            return 409, {
                "error": "instance version moved during the re-solve; retry"
            }
        return 200, doc
    payload, err = _parse_body(body)
    if err is not None:
        return err
    costs, embeddings = _parse_photos(payload)
    if action == "live":  # POST — create the live archive
        budget = payload.get("budget")
        tau = payload.get("tau")
        if not isinstance(budget, (int, float)) or not budget > 0:
            raise ValidationError("request body needs a positive 'budget'")
        if not isinstance(tau, (int, float)):
            raise ValidationError("request body needs a numeric 'tau'")
        doc = live.create(
            tenant,
            instance_id,
            costs,
            embeddings,
            float(budget),
            tau=float(tau),
            seed=int(payload.get("seed", 0)),
            n_bits=payload.get("n_bits", "auto"),
            target_recall=float(payload.get("target_recall", 0.95)),
            retained=[int(p) for p in payload.get("retained", [])],
            solve=bool(payload.get("solve", True)),
        )
        if sweeper is not None:
            sweeper.track(tenant, instance_id)
        return 201, doc
    # POST .../photos — delta ingestion
    doc = live.ingest(
        tenant,
        instance_id,
        costs,
        embeddings,
        resolve=str(payload.get("resolve", "warm")),
    )
    if sweeper is not None:
        sweeper.track(tenant, instance_id)
    return 200, doc


def _jobs_routes(
    method: str,
    path: str,
    query: Dict[str, Any],
    body: Optional[bytes],
    jobs: Optional[JobManager],
    tenants: Optional[Tenants],
    headers: Optional[Any] = None,
    resilience: Optional[Resilience] = None,
) -> Tuple[int, Dict[str, Any]]:
    if jobs is None:
        return 503, {"error": "job manager not running on this service"}
    if path == "/jobs" and method == "POST":
        payload, err = _parse_body(body)
        if err is not None:
            return err
        header_deadline = _deadline_ms_from(headers)
        if header_deadline is not None and payload.get("deadline_ms") is None:
            payload["deadline_ms"] = header_deadline
        return _submit_job(payload, jobs, tenants, resilience=resilience)
    if path == "/jobs" and method == "GET":
        state = query.get("state")
        tenant = query.get("tenant")
        if state is not None and state not in JobState.__members__:
            return 400, {
                "error": f"unknown state {state!r}; one of {sorted(JobState.__members__)}"
            }
        return 200, {"jobs": jobs.jobs(state=state, tenant=tenant)}
    job_id = path[len("/jobs/") :]
    if method == "GET":
        doc = jobs.status(job_id)
        if doc is None:
            return 404, {"error": f"no job {job_id!r}"}
        if doc["state"] == JobState.SUCCEEDED.value:
            doc["result"] = jobs.result(job_id)
        return 200, doc
    # DELETE /jobs/<id>
    try:
        cancelled = jobs.cancel(job_id)
    except KeyError:
        return 404, {"error": f"no job {job_id!r}"}
    doc = jobs.status(job_id)
    return 200, {
        "job_id": job_id,
        "cancelled": cancelled,
        "state": doc["state"] if doc else None,
    }


def handle_request(
    method: str,
    path: str,
    body: Optional[bytes],
    jobs: Optional[JobManager] = None,
    instruments: Optional["obs_probes.Instruments"] = None,
    tenants: Optional[Tenants] = None,
    *,
    headers: Optional[Any] = None,
    resilience: Optional[Resilience] = None,
    live=None,
    sweeper=None,
) -> Tuple[int, Dict[str, Any]]:
    """Pure request dispatcher (transport-independent, directly testable).

    ``jobs`` is the service's :class:`~repro.jobs.JobManager`; without
    one, the ``/jobs`` and ``/stats`` routes answer 503.  ``instruments``
    backs ``GET /metrics``; without them the route answers 404 (metrics
    disabled).  ``tenants`` backs the ``/tenants/...`` family and the
    ``by_ref`` solve path; without it those answer 503 / 422.
    ``headers`` is any ``.get``-able view of the request headers (the
    ``X-Phocus-Deadline-Ms`` deadline); ``resilience`` is the service's
    :class:`~repro.resilience.Resilience` bundle — without one, every
    resilience feature is inert and behaviour is unchanged.  ``live`` is
    the service's :class:`~repro.live.LiveManager` backing the
    ``.../live``, ``.../photos`` and ``.../recurate`` sub-resources
    (503 without one); ``sweeper`` is the optional
    :class:`~repro.live.RecurationScheduler`, told to track every
    instance the live routes touch.  Returns
    ``(http_status, json_payload)`` — for ``/metrics`` the payload
    carries the exposition text under the ``RAW_BODY`` key, which the
    transport serves verbatim with the ``RAW_CONTENT_TYPE`` content type
    instead of JSON-encoding it.
    """
    parts = urlsplit(path)
    path = parts.path.rstrip("/") or "/"
    query = {k: v[-1] for k, v in parse_qs(parts.query).items()}

    if path.startswith("/jobs/"):
        route_key: Optional[str] = "/jobs/<id>"
    elif path.startswith("/tenants/"):
        route_key = _tenants_route_key(path)
    else:
        route_key = path
    allowed = _ALLOWED_METHODS.get(route_key) if route_key else None
    if allowed is None:
        return 404, {"error": f"no route for {method} {path}"}
    if method not in allowed:
        return 405, {
            "error": f"method {method} not allowed for {path}",
            "allow": list(allowed),
        }

    try:
        if (
            resilience is not None
            and method in ("POST", "PUT")
            and resilience.drain.draining()
        ):
            # Stop accepting mutations the moment a drain begins; reads
            # (status polling, /metrics) keep working until the socket
            # closes.
            raise ServiceOverloaded(
                "service is draining; retry against another instance",
                reason="draining",
            )
        if path == "/metrics":
            if instruments is None:
                return 404, {"error": "metrics are disabled on this service"}
            return 200, {
                RAW_BODY: render_registry(instruments.registry),
                RAW_CONTENT_TYPE: _PROM_CONTENT_TYPE,
            }
        if path == "/health":
            from repro import __version__

            return 200, {"status": "ok", "version": __version__}
        if path == "/healthz":
            # Pure liveness: no locks, no subsystem calls — safe for tight
            # orchestrator probe loops even while the service is degraded.
            return 200, {"status": "ok"}
        if path == "/readyz":
            # Readiness (vs /healthz liveness): load balancers should stop
            # routing here while the service drains or saturates.
            if resilience is None or resilience.ready():
                return 200, {"status": "ready"}
            doc: Dict[str, Any] = {
                "status": "unready",
                "draining": resilience.drain.draining(),
            }
            if resilience.admission is not None:
                doc["overloaded"] = resilience.admission.overloaded()
            return 503, doc
        if path == "/version":
            from repro import __version__

            return 200, {"version": __version__}
        if path == "/algorithms":
            return 200, {"algorithms": available_algorithms()}
        if path in ("/solve", "/score", "/fidelity/frontier"):
            payload, err = _parse_body(body)
            if err is not None:
                return err
            deadline_ms = _deadline_ms_from(headers, payload)
            payload.pop("deadline_ms", None)
            if resilience is None:
                if deadline_ms is not None:
                    # execute_solve_payload arms the scope on its own thread
                    payload["deadline_ms"] = deadline_ms
                if path == "/solve":
                    return 200, _solve_endpoint(payload, tenants)
                if path == "/fidelity/frontier":
                    return 200, _fidelity_frontier_endpoint(payload, tenants)
                return 200, _score_endpoint(payload, tenants)
            request_deadline = resilience.request_deadline(deadline_ms)
            with ExitStack() as stack:
                stack.enter_context(deadline_scope(request_deadline))
                if resilience.admission is not None:
                    stack.enter_context(
                        resilience.admission.admit(
                            _request_tenant(payload), deadline=request_deadline
                        )
                    )
                if path == "/solve":
                    return 200, _solve_endpoint(payload, tenants, resilience)
                if path == "/fidelity/frontier":
                    return 200, _fidelity_frontier_endpoint(payload, tenants)
                return 200, _score_endpoint(payload, tenants)
        if path == "/stats":
            if jobs is None:
                return 503, {"error": "job manager not running on this service"}
            stats = jobs.stats()
            if resilience is not None:
                stats["resilience"] = resilience.snapshot()
            return 200, stats
        if path.startswith("/tenants/"):
            if route_key and route_key.startswith(
                "/tenants/<id>/instances/<iid>/"
            ):
                return _live_routes(
                    method, path, body, tenants, live, sweeper
                )
            return _tenants_routes(method, path, body, tenants)
        # /jobs and /jobs/<id>
        return _jobs_routes(
            method,
            path,
            query,
            body,
            jobs,
            tenants,
            headers=headers,
            resilience=resilience,
        )
    except RateLimited as exc:
        return 429, {
            "error": str(exc),
            "tenant": exc.tenant,
            "retry_after": exc.retry_after,
        }
    except QuotaExceeded as exc:
        return 413, {
            "error": str(exc),
            "tenant": exc.tenant,
            "kind": exc.kind,
            "used": exc.used,
            "limit": exc.limit,
        }
    except InstanceNotFound as exc:
        return 404, {"error": str(exc)}
    except ServiceOverloaded as exc:
        shed_doc: Dict[str, Any] = {
            "error": str(exc),
            "reason": exc.reason,
            "retry_after": exc.retry_after,
        }
        if exc.tenant is not None:
            shed_doc["tenant"] = exc.tenant
        return 503, shed_doc
    except DeadlineExceeded as exc:
        return 504, {
            "error": str(exc),
            "reason": exc.reason,
            "deadline_seconds": exc.deadline_seconds,
            "elapsed_seconds": exc.elapsed_seconds,
            "progress": exc.progress(),
        }
    except StorageExhausted as exc:
        return 507, {
            "error": str(exc),
            "kind": exc.kind,
            "path": exc.path,
            "errno": exc.errno_value,
        }
    except ReproError as exc:
        return 422, {"error": str(exc)}
    except Exception as exc:  # noqa: BLE001 - service boundary
        return 500, {"error": f"internal error: {exc}"}


class _Handler(BaseHTTPRequestHandler):
    server_version = "PHOcus/1.0"

    def _jobs(self) -> Optional[JobManager]:
        return getattr(self.server, "phocus_jobs", None)

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        if RAW_BODY in payload:
            data = str(payload[RAW_BODY]).encode("utf-8")
            content_type = str(
                payload.get(RAW_CONTENT_TYPE) or "text/plain; charset=utf-8"
            )
        else:
            data = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if status == 405 and isinstance(payload.get("allow"), list):
            self.send_header("Allow", ", ".join(payload["allow"]))
        if status in (429, 503):
            retry_after = payload.get("retry_after")
            if isinstance(retry_after, (int, float)) and retry_after > 0:
                # HTTP Retry-After is integer seconds; round up so clients
                # never retry before the advertised backoff has passed.
                self.send_header("Retry-After", str(math.ceil(retry_after)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str, body: Optional[bytes]) -> None:
        start = time.perf_counter()
        status, payload = handle_request(
            method,
            self.path,
            body,
            self._jobs(),
            instruments=getattr(self.server, "phocus_obs", None),
            tenants=getattr(self.server, "phocus_tenants", None),
            headers=self.headers,
            resilience=getattr(self.server, "phocus_resilience", None),
            live=getattr(self.server, "phocus_live", None),
            sweeper=getattr(self.server, "phocus_sweeper", None),
        )
        self._reply(status, payload)
        observe_request(
            getattr(self.server, "phocus_obs", None),
            getattr(self.server, "phocus_access_log", None),
            method,
            self.path,
            status,
            time.perf_counter() - start,
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET", None)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE", None)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch_with_body("POST")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._dispatch_with_body("PUT")

    def _dispatch_with_body(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            self._reply(413, {"error": "request body too large"})
            return
        body = self.rfile.read(length) if length else b""
        self._dispatch(method, body)

    def log_message(self, *args) -> None:
        # http.server's default per-request stderr line is replaced by the
        # structured access log in repro.obs.middleware (opt-in via the
        # service's access_log flag); keep the built-in channel silent.
        return


class _Server(ThreadingHTTPServer):
    # socketserver's default listen backlog (5) drops simultaneous
    # connects with RST under tenant fan-out; size it for a load burst.
    request_queue_size = 128


class PhocusService:
    """An embeddable PHOcus solver server with background job execution.

    ``port=0`` (default) binds an ephemeral port; read the bound address
    from :attr:`address`.  The service owns a :class:`JobManager`
    (``workers`` threads, ``queue_depth`` bound, optional JSONL
    ``journal_path`` for crash recovery) — pass ``job_manager`` to share
    an external one, or ``workers=0`` to serve only the synchronous API.
    Use as a context manager or call :meth:`start` / :meth:`stop`.

    ``metrics=True`` (default) arms :mod:`repro.obs.probes` process-wide
    and serves the registry at ``GET /metrics``; ``metrics=False`` leaves
    the probes untouched and the route answers 404.  ``access_log=True``
    emits one structured JSON line per request on stderr.

    ``resilience=Resilience(...)`` opts into overload resilience:
    deadline propagation, admission control (its ``observe_wait`` is
    wired as the job manager's wait observer), brownout degradation, and
    the :meth:`drain` SIGTERM sequence.  Omitted, the service behaves
    exactly as before.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 4,
        queue_depth: int = 256,
        journal_path: Optional[str] = None,
        job_manager: Optional[JobManager] = None,
        checkpoint_every: Optional[int] = None,
        metrics: bool = True,
        access_log: bool = False,
        tenants_root: Optional[str] = None,
        tenants: Optional[Tenants] = None,
        tenants_cache_bytes: float = 256 * 1024 * 1024,
        tenant_quota: Optional[TenantQuota] = None,
        resilience: Optional[Resilience] = None,
        live_max_resident: int = DEFAULT_MAX_RESIDENT,
        recuration: bool = False,
        recuration_interval: float = 0.25,
        recuration_debounce: float = 1.0,
        recuration_max_pending: int = 16,
        recuration_max_photos: int = 512,
        recuration_regret: float = 0.25,
    ) -> None:
        self._server = _Server((host, port), _Handler)
        self.resilience = resilience
        self._thread: Optional[threading.Thread] = None
        self._owns_tenants = tenants is None and tenants_root is not None
        if tenants is None and tenants_root is not None:
            tenants = Tenants(
                tenants_root,
                cache_bytes=tenants_cache_bytes,
                quota=tenant_quota,
            )
        self.tenants = tenants
        self._owns_jobs = job_manager is None
        self.jobs = job_manager or JobManager(
            workers=workers,
            queue_depth=queue_depth,
            journal_path=journal_path,
            default_checkpoint_every=checkpoint_every,
            by_ref_resolver=(
                self._lease_by_ref if tenants is not None else None
            ),
            wait_observer=(
                resilience.admission.observe_wait
                if resilience is not None and resilience.admission is not None
                else None
            ),
        )
        self._server.phocus_jobs = self.jobs
        self._server.phocus_tenants = self.tenants
        self._server.phocus_resilience = resilience
        # Live curation rides the tenant store: the manager is always
        # available when tenants are configured; the background
        # re-curation sweep is opt-in (``recuration=True``) and submits
        # full re-solves through this service's own job manager.
        self.live = (
            LiveManager(self.tenants, max_resident=live_max_resident)
            if self.tenants is not None
            else None
        )
        self.sweeper: Optional[RecurationScheduler] = None
        if recuration and self.live is not None:
            self.sweeper = RecurationScheduler(
                self.live,
                jobs=self.jobs,
                interval=recuration_interval,
                debounce_seconds=recuration_debounce,
                max_pending_deltas=recuration_max_pending,
                max_pending_photos=recuration_max_photos,
                regret_threshold=recuration_regret,
            )
            self.sweeper.start()
        self._server.phocus_live = self.live
        self._server.phocus_sweeper = self.sweeper
        # Arm (or reuse already-armed) process instruments; re-arming with
        # no arguments keeps an existing registry so multiple services in
        # one process share a single exposition.
        self.instruments = obs_probes.arm() if metrics else None
        self._server.phocus_obs = self.instruments
        self._server.phocus_access_log = AccessLog() if access_log else None

    @contextmanager
    def _lease_by_ref(self, by_ref: Dict[str, Any]):
        # Background jobs resolve references exactly like /solve does; the
        # lease spans the job's solve so eviction cannot unmap it mid-run.
        with self.tenants.lease_for_solve(by_ref) as (instance, _hit):
            yield instance

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "PhocusService":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="phocus-service", daemon=True
        )
        self._thread.start()
        return self

    def drain(self, grace_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Run the SIGTERM drain sequence; idempotent, returns a summary.

        Stop accepting (POST/PUT shed 503, ``/readyz`` goes unready) →
        interrupt running jobs so they checkpoint and return to QUEUED →
        release tenant warm-cache leases → flush and close the journal.
        The HTTP listener keeps answering reads until :meth:`stop`; a
        fresh service on the same journal resumes the requeued jobs
        bit-identically.
        """
        if self.resilience is not None:
            if not self.resilience.drain.begin():
                return {
                    "state": self.resilience.drain.state,
                    "interrupted": 0,
                    "forced_requeue": 0,
                }
            if grace_seconds is None:
                grace_seconds = self.resilience.drain.grace_seconds
        if grace_seconds is None:
            grace_seconds = 10.0
        if self.sweeper is not None:
            # Stop generating new curation work before the job manager
            # starts checkpointing what is already running.
            self.sweeper.stop()
        summary: Dict[str, Any] = {"interrupted": 0, "forced_requeue": 0}
        if self._owns_jobs:
            summary = self.jobs.drain(grace_seconds=grace_seconds)
        if self._owns_tenants and self.tenants is not None:
            self.tenants.close()
        if self.resilience is not None:
            self.resilience.drain.finish()
            summary["state"] = self.resilience.drain.state
        return summary

    def stop(self) -> None:
        if self.sweeper is not None:
            self.sweeper.stop()
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()
        self._thread = None
        if self._owns_jobs:
            self.jobs.shutdown()
        if self._owns_tenants and self.tenants is not None:
            self.tenants.close()

    def __enter__(self) -> "PhocusService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
