"""The end-to-end PHOcus system (Figure 4) and its CLI."""

from repro.system.phocus import (
    ArchiveReport,
    DataRepresentationModule,
    PHOcus,
    PhocusConfig,
)
from repro.system.analysis import InstanceDiagnostics, analyze_instance
from repro.system.report_html import render_report_html, write_report_html
from repro.system.service import PhocusService

__all__ = [
    "PHOcus",
    "PhocusConfig",
    "ArchiveReport",
    "DataRepresentationModule",
    "PhocusService",
    "analyze_instance",
    "InstanceDiagnostics",
    "render_report_html",
    "write_report_html",
]
