"""The end-to-end PHOcus system (Figure 4) and its CLI."""

from repro.system.phocus import (
    ArchiveReport,
    DataRepresentationModule,
    PHOcus,
    PhocusConfig,
)
from repro.jobs import JobManager
from repro.system.analysis import InstanceDiagnostics, analyze_instance
from repro.system.report_html import render_report_html, write_report_html
from repro.system.service import PhocusService, handle_request

__all__ = [
    "PHOcus",
    "PhocusConfig",
    "ArchiveReport",
    "DataRepresentationModule",
    "PhocusService",
    "JobManager",
    "handle_request",
    "analyze_instance",
    "InstanceDiagnostics",
    "render_report_html",
    "write_report_html",
]
