"""Instance diagnostics — the "Analysis" box of the Figure 4 architecture.

Before an analyst trusts an archival run, they want to know whether the
*inputs* are healthy: are there photos no pre-defined subset cares about
(dead weight that will always be archived)?  Subsets so small or so
redundant that their scores are trivially saturated?  A weight
distribution so skewed that one landing page dominates every decision?

:func:`analyze_instance` computes those signals; the CLI's ``inspect``
command renders them.  The diagnostics are read-only — they never change
solver behaviour — but several tests use them to sanity-check generated
datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.instance import PARInstance
from repro.datasets.base import MB

__all__ = ["InstanceDiagnostics", "analyze_instance"]


@dataclass
class InstanceDiagnostics:
    """Structural health report of a PAR instance."""

    n_photos: int
    n_subsets: int
    total_cost: float
    budget: float
    budget_fraction: float
    orphan_photos: List[int]
    singleton_subsets: List[str]
    weight_concentration: float
    mean_subset_size: float
    max_subset_size: int
    mean_overlap_degree: float
    similarity_density: float
    retained_cost_fraction: float
    warnings: List[str] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        """Human-readable rendering for the CLI."""
        lines = [
            f"photos               : {self.n_photos} "
            f"({self.total_cost / MB:.1f} MB total)",
            f"pre-defined subsets  : {self.n_subsets} "
            f"(mean size {self.mean_subset_size:.1f}, max {self.max_subset_size})",
            f"budget               : {self.budget / MB:.1f} MB "
            f"({self.budget_fraction:.1%} of corpus)",
            f"photo reuse          : a photo appears in "
            f"{self.mean_overlap_degree:.2f} subsets on average",
            f"similarity density   : {self.similarity_density:.1%} of stored "
            f"pairs are nonzero",
            f"weight concentration : top-10% subsets hold "
            f"{self.weight_concentration:.1%} of total weight",
            f"retention set        : {self.retained_cost_fraction:.1%} of the budget",
        ]
        if self.orphan_photos:
            lines.append(
                f"orphan photos        : {len(self.orphan_photos)} photos belong "
                f"to no subset (always archived)"
            )
        if self.singleton_subsets:
            lines.append(
                f"singleton subsets    : {len(self.singleton_subsets)} subsets "
                f"have one member (keep-or-lose decisions)"
            )
        for warning in self.warnings:
            lines.append(f"warning              : {warning}")
        return lines


def analyze_instance(instance: PARInstance) -> InstanceDiagnostics:
    """Compute the structural diagnostics of an instance."""
    membership_degree = np.array(
        [len(instance.membership[p]) for p in range(instance.n)]
    )
    orphans = [int(p) for p in np.nonzero(membership_degree == 0)[0]]
    singletons = [q.subset_id for q in instance.subsets if len(q) == 1]

    weights = np.array([q.weight for q in instance.subsets], dtype=np.float64)
    order = np.sort(weights)[::-1]
    top_k = max(1, int(np.ceil(len(order) * 0.1)))
    concentration = float(order[:top_k].sum() / order.sum()) if order.sum() > 0 else 0.0

    sizes = [len(q) for q in instance.subsets]
    possible_pairs = sum(m * m for m in sizes)
    density = (
        instance.similarity_nnz() / possible_pairs if possible_pairs else 0.0
    )

    total_cost = instance.total_cost()
    retained_cost = instance.cost_of(instance.retained)
    budget_fraction = instance.budget / total_cost if total_cost > 0 else 0.0

    warnings: List[str] = []
    if budget_fraction >= 1.0:
        warnings.append("budget covers the whole corpus — nothing needs archiving")
    if retained_cost > instance.budget * 0.5:
        warnings.append("retention set consumes over half the budget")
    if orphans and len(orphans) > instance.n * 0.2:
        warnings.append("over 20% of photos are in no subset; consider re-tagging")
    min_cost = float(instance.costs.min())
    if min_cost > instance.budget:
        warnings.append("no single photo fits the budget — the solution is S0 only")

    return InstanceDiagnostics(
        n_photos=instance.n,
        n_subsets=len(instance.subsets),
        total_cost=total_cost,
        budget=instance.budget,
        budget_fraction=budget_fraction,
        orphan_photos=orphans,
        singleton_subsets=singletons,
        weight_concentration=concentration,
        mean_subset_size=float(np.mean(sizes)) if sizes else 0.0,
        max_subset_size=int(np.max(sizes)) if sizes else 0,
        mean_overlap_degree=float(membership_degree.mean()),
        similarity_density=float(density),
        retained_cost_fraction=(
            retained_cost / instance.budget if instance.budget > 0 else 0.0
        ),
        warnings=warnings,
    )
