"""Static HTML rendering of an archive report (the PHOcus UI surface).

The PHOcus prototype demonstrated in the companion demo paper [11] gives
analysts a visual report of an archival run.  This module renders an
:class:`~repro.system.phocus.ArchiveReport` to a dependency-free, static
HTML page: the headline numbers, per-subset coverage bars, the retained
versus archived split, and the certificates — everything an analyst
reviews before approving the run (the "final touches and approval" step
of the user study).

No templating engine is used; the page is assembled from escaped strings
so the module stays importable anywhere the library runs.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Optional, Union

from repro.core.instance import PARInstance
from repro.datasets.base import MB
from repro.system.phocus import ArchiveReport

__all__ = ["render_report_html", "write_report_html"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e0e0ea; font-size: 0.9rem; }
.bar { background: #dfe7f5; height: 0.8rem; border-radius: 2px; }
.bar > div { background: #3b6fd4; height: 100%; border-radius: 2px; }
.kpi { display: inline-block; margin-right: 2rem; }
.kpi .v { font-size: 1.3rem; font-weight: 600; }
.kpi .k { font-size: 0.8rem; color: #666; }
.muted { color: #888; font-size: 0.85rem; }
"""


def _kpi(value: str, label: str) -> str:
    return (
        f'<span class="kpi"><span class="v">{html.escape(value)}</span><br>'
        f'<span class="k">{html.escape(label)}</span></span>'
    )


def _bar(fraction: float) -> str:
    pct = max(0.0, min(1.0, fraction)) * 100.0
    return f'<div class="bar"><div style="width:{pct:.1f}%"></div></div>'


def render_report_html(
    report: ArchiveReport,
    instance: Optional[PARInstance] = None,
    *,
    title: str = "PHOcus archive report",
) -> str:
    """Render a report (optionally with its instance for subset detail)."""
    sol = report.solution
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p>",
        _kpi(f"{sol.value:.3f}", "objective G(S)"),
        _kpi(f"{report.retained_count}", "photos retained"),
        _kpi(f"{report.archived_count}", "photos archived"),
        _kpi(
            f"{sol.cost / MB:.1f} / {sol.budget / MB:.1f} MB",
            f"budget used ({report.budget_utilisation:.0%})",
        ),
        "</p>",
    ]
    if sol.ratio_certificate is not None:
        parts.append(
            f"<p class='muted'>certified ≥ {sol.ratio_certificate:.1%} of the "
            f"optimal achievable score (online bound "
            f"{report.optimum_upper_bound:.3f})</p>"
        )
    if report.sparsify is not None:
        rep = report.sparsify
        parts.append(
            f"<p class='muted'>τ-sparsification ({rep.method}, τ={rep.tau}): kept "
            f"{rep.kept_fraction:.1%} of similarity entries, compared "
            f"{rep.checked_fraction:.1%} of pairs"
            + (
                f"; Theorem 4.8 guarantee ≥ {report.sparsification_guarantee:.3f}"
                if report.sparsification_guarantee is not None
                else ""
            )
            + "</p>"
        )

    parts.append("<h2>Coverage by pre-defined subset</h2>")
    parts.append(
        "<table><tr><th>subset</th><th>achieved</th><th>of weight</th>"
        "<th style='width:40%'>coverage</th></tr>"
    )
    weights = {}
    if instance is not None:
        weights = {q.subset_id: q.weight for q in instance.subsets}
    for subset_id, value in sorted(
        report.subset_scores.items(), key=lambda kv: kv[1]
    ):
        weight = weights.get(subset_id)
        weight_cell = f"{weight:.4f}" if weight is not None else "—"
        coverage_cell = _bar(value / weight) if weight else "—"
        parts.append(
            "<tr>"
            f"<td>{html.escape(str(subset_id))}</td>"
            f"<td>{value:.4f}</td>"
            f"<td>{weight_cell}</td>"
            f"<td>{coverage_cell}</td>"
            "</tr>"
        )
    parts.append("</table>")

    if instance is not None:
        kept = set(sol.selection)
        parts.append("<h2>Retained photos</h2><table>")
        parts.append("<tr><th>id</th><th>label</th><th>size (MB)</th></tr>")
        for p in sol.selection:
            photo = instance.photos[p]
            parts.append(
                f"<tr><td>{photo.photo_id}</td>"
                f"<td>{html.escape(photo.label or '')}</td>"
                f"<td>{photo.cost / MB:.2f}</td></tr>"
            )
        parts.append("</table>")
        parts.append(
            f"<p class='muted'>{instance.n - len(kept)} photos move to cold "
            f"storage; the retention set S0 ({len(instance.retained)} photos) "
            f"is pinned.</p>"
        )

    parts.append(
        f"<p class='muted'>algorithm {html.escape(sol.algorithm)} · solve "
        f"{sol.elapsed_seconds:.2f}s · preprocessing {report.prep_seconds:.2f}s</p>"
    )
    parts.append("</body></html>")
    return "".join(parts)


def write_report_html(
    report: ArchiveReport,
    path: Union[str, Path],
    instance: Optional[PARInstance] = None,
    **kwargs,
) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_report_html(report, instance, **kwargs), encoding="utf-8")
    return path
