"""Command-line front end for PHOcus.

Usage examples::

    phocus datasets
    phocus solve --dataset P-1K --scale 0.2 --budget-mb 25 --tau 0.5
    phocus solve --dataset EC-Fashion --scale 0.05 --budget-fraction 0.1 \
        --algorithm greedy-ncs
    phocus demo

``solve`` generates (or loads) a dataset, runs the configured pipeline
and prints the analyst report; ``demo`` replays the paper's Figure 1
example with the Figure 3 trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro.core.greedy import UC, lazy_greedy
from repro.core.paper_example import MB, figure1_instance
from repro.core.solver import available_algorithms
from repro.datasets.io import load_dataset
from repro.datasets.registry import dataset_names
from repro.datasets.registry import load as load_named
from repro.system.phocus import ArchiveReport, PHOcus, PhocusConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phocus",
        description="PHOcus: archive photos under a storage budget (EDBT 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the registered Table 2 datasets")

    solve_p = sub.add_parser("solve", help="run the PHOcus pipeline on a dataset")
    solve_p.add_argument("--dataset", help="registered dataset name (see 'datasets')")
    solve_p.add_argument("--dataset-file", help="path of a saved dataset JSON")
    solve_p.add_argument("--scale", type=float, default=0.1, help="dataset scale factor")
    solve_p.add_argument("--seed", type=int, default=0)
    solve_p.add_argument("--budget-mb", type=float, help="budget in megabytes")
    solve_p.add_argument(
        "--budget-fraction", type=float, help="budget as a fraction of the corpus size"
    )
    solve_p.add_argument(
        "--algorithm", default="phocus", choices=available_algorithms()
    )
    solve_p.add_argument("--tau", type=float, default=0.0, help="sparsification threshold")
    solve_p.add_argument(
        "--sparsify-method", default="exact", choices=["exact", "lsh"]
    )
    solve_p.add_argument("--no-certificate", action="store_true")
    solve_p.add_argument(
        "--deadline-ms",
        type=float,
        metavar="MS",
        help="abandon the solve after this wall-clock budget (exit code 124; "
        "the partial checkpoint is reported)",
    )
    solve_p.add_argument(
        "--compress",
        action="store_true",
        help="allow compressed photo renditions (Section 6 extension)",
    )
    solve_p.add_argument(
        "--html-report",
        metavar="PATH",
        help="additionally write a static HTML archive report",
    )

    compare_p = sub.add_parser(
        "compare", help="run several algorithms over a budget sweep"
    )
    compare_p.add_argument("--dataset", required=True, help="registered dataset name")
    compare_p.add_argument("--scale", type=float, default=0.1)
    compare_p.add_argument("--seed", type=int, default=0)
    compare_p.add_argument(
        "--budget-fractions",
        default="0.05,0.1,0.2,0.5",
        help="comma-separated corpus-cost fractions",
    )
    compare_p.add_argument(
        "--algorithms",
        default="rand-a,greedy-nr,greedy-ncs,phocus",
        help="comma-separated algorithm names",
    )

    fidelity_p = sub.add_parser(
        "fidelity",
        help="multi-fidelity solve: keep / recompress / drop under the budget",
    )
    fidelity_p.add_argument("--dataset", required=True, help="registered dataset name")
    fidelity_p.add_argument("--scale", type=float, default=0.1)
    fidelity_p.add_argument("--seed", type=int, default=0)
    fidelity_p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.1,
        help="budget as a fraction of the corpus size (single solve)",
    )
    fidelity_p.add_argument(
        "--budget-fractions",
        help="comma-separated fractions — sweep the budget-vs-quality "
        "frontier against discard-only PHOcus",
    )
    fidelity_p.add_argument(
        "--levels",
        help="recompression menu as fidelity:size pairs, e.g. "
        "'0.85:0.45,0.6:0.22' (default: the built-in q85/q60 tiers)",
    )
    fidelity_p.add_argument("--mode", default="auto", choices=["auto", "uc", "cb"])
    fidelity_p.add_argument(
        "--no-upgrade",
        action="store_true",
        help="disable in-drain upgrades of chosen variants",
    )

    sub.add_parser("demo", help="replay the paper's Figure 1 / Figure 3 example")

    inspect_p = sub.add_parser(
        "inspect", help="structural diagnostics of a dataset instance"
    )
    inspect_p.add_argument("--dataset", required=True)
    inspect_p.add_argument("--scale", type=float, default=0.1)
    inspect_p.add_argument("--seed", type=int, default=0)
    inspect_p.add_argument("--budget-fraction", type=float, default=0.1)

    serve_p = sub.add_parser("serve", help="run the HTTP solver service")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8471)
    serve_p.add_argument(
        "--workers", type=int, default=4, help="background solve worker threads"
    )
    serve_p.add_argument(
        "--queue-depth", type=int, default=256, help="job queue bound (0 = unbounded)"
    )
    serve_p.add_argument(
        "--journal",
        metavar="PATH",
        help="JSONL job journal; unfinished jobs replay on restart",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="checkpoint running solves every N greedy picks so replayed "
        "jobs resume mid-solve instead of restarting",
    )
    serve_p.add_argument(
        "--metrics",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="arm the metrics registry and serve GET /metrics "
        "(--no-metrics disables both)",
    )
    serve_p.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON line per request on stderr",
    )
    serve_p.add_argument(
        "--tenants-root",
        metavar="DIR",
        help="directory for the multi-tenant instance store; enables the "
        "/tenants API and by_ref solves",
    )
    serve_p.add_argument(
        "--tenants-cache-mb",
        type=float,
        default=256.0,
        help="shared-memory warm cache capacity in MiB (0 disables caching)",
    )
    serve_p.add_argument(
        "--tenant-max-bytes",
        type=float,
        help="per-tenant storage quota in bytes (default: unlimited)",
    )
    serve_p.add_argument(
        "--tenant-max-instances",
        type=int,
        help="per-tenant stored instance count quota (default: unlimited)",
    )
    serve_p.add_argument(
        "--tenant-rate",
        type=float,
        help="per-tenant request rate limit in requests/second "
        "(default: unlimited)",
    )
    serve_p.add_argument(
        "--tenant-burst",
        type=int,
        default=10,
        help="token-bucket burst size for --tenant-rate",
    )
    serve_p.add_argument(
        "--max-inflight",
        type=int,
        metavar="N",
        help="admission control: bound concurrently executing solves and "
        "shed excess load with 503 + Retry-After (default: no shedding)",
    )
    serve_p.add_argument(
        "--target-wait-seconds",
        type=float,
        default=5.0,
        help="queue-wait SLO for admission control (with --max-inflight)",
    )
    serve_p.add_argument(
        "--brownout-tau",
        type=float,
        metavar="TAU",
        help="enable brownout: requests opting in with degraded_ok may get "
        "τ-sparsified or cached answers under pressure (always labeled)",
    )
    serve_p.add_argument(
        "--default-deadline-ms",
        type=float,
        metavar="MS",
        help="deadline applied to requests that carry none of their own",
    )
    serve_p.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="SIGTERM drain: how long running solves get to checkpoint "
        "before being requeued from their last snapshot",
    )
    serve_p.add_argument(
        "--recuration",
        action="store_true",
        help="run the background re-curation sweep over live instances "
        "(requires --tenants-root)",
    )
    serve_p.add_argument(
        "--recuration-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="re-curation sweep period",
    )
    serve_p.add_argument(
        "--recuration-debounce",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="coalesce an upload burst into one warm re-solve once it has "
        "been quiet this long",
    )
    serve_p.add_argument(
        "--recuration-regret",
        type=float,
        default=0.25,
        metavar="BOUND",
        help="escalate to a full re-solve once the accumulated certified "
        "regret crosses this threshold",
    )

    jobs_p = sub.add_parser(
        "jobs", help="submit and track background solve jobs on a running service"
    )
    jobs_p.add_argument(
        "--server",
        default="http://127.0.0.1:8471",
        help="base URL of a running 'phocus serve' instance",
    )
    jobs_sub = jobs_p.add_subparsers(dest="jobs_command", required=True)

    submit_p = jobs_sub.add_parser("submit", help="submit a serialised instance")
    submit_p.add_argument(
        "--instance-file",
        required=True,
        help="JSON file in the repro.core.serialize instance wire format",
    )
    submit_p.add_argument("--algorithm", default="phocus", choices=available_algorithms())
    submit_p.add_argument("--tau", type=float, default=0.0)
    submit_p.add_argument("--tenant", default="default")
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument("--timeout-seconds", type=float)
    submit_p.add_argument(
        "--deadline-ms",
        type=float,
        help="total latency budget from submission (queue wait included); "
        "an expired job fails with error_kind=deadline, keeping its "
        "checkpoint",
    )
    submit_p.add_argument("--max-attempts", type=int, default=3)
    submit_p.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        help="checkpoint this job every N greedy picks",
    )
    submit_p.add_argument("--certificate", action="store_true")
    submit_p.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    submit_p.add_argument("--poll-interval", type=float, default=0.5)

    status_p = jobs_sub.add_parser("status", help="show one job's state")
    status_p.add_argument("--id", required=True, dest="job_id")
    status_p.add_argument(
        "--wait", action="store_true", help="poll until the job finishes"
    )
    status_p.add_argument("--poll-interval", type=float, default=0.5)

    result_p = jobs_sub.add_parser("result", help="print a finished job's solution")
    result_p.add_argument("--id", required=True, dest="job_id")

    cancel_p = jobs_sub.add_parser("cancel", help="cancel a queued or running job")
    cancel_p.add_argument("--id", required=True, dest="job_id")

    list_p = jobs_sub.add_parser("list", help="list jobs on the service")
    list_p.add_argument("--state", choices=[
        "QUEUED", "RUNNING", "SUCCEEDED", "FAILED", "CANCELLED"
    ])
    list_p.add_argument("--tenant")

    jobs_sub.add_parser("stats", help="queue / worker / latency statistics")

    tenants_p = sub.add_parser(
        "tenants", help="manage stored instances on a running service"
    )
    tenants_p.add_argument(
        "--server",
        default="http://127.0.0.1:8471",
        help="base URL of a running 'phocus serve' instance",
    )
    tenants_sub = tenants_p.add_subparsers(dest="tenants_command", required=True)

    upload_p = tenants_sub.add_parser(
        "upload", help="upload a serialised instance for by_ref solving"
    )
    upload_p.add_argument("--tenant", required=True)
    upload_p.add_argument("--id", required=True, dest="instance_id")
    upload_p.add_argument(
        "--instance-file",
        required=True,
        help="JSON file in the repro.core.serialize instance wire format",
    )

    tlist_p = tenants_sub.add_parser("list", help="list a tenant's stored instances")
    tlist_p.add_argument("--tenant", required=True)

    rm_p = tenants_sub.add_parser("rm", help="delete a stored instance")
    rm_p.add_argument("--tenant", required=True)
    rm_p.add_argument("--id", required=True, dest="instance_id")

    tstats_p = tenants_sub.add_parser(
        "stats", help="store / warm-cache / quota view for one tenant"
    )
    tstats_p.add_argument("--tenant", required=True)

    live_p = sub.add_parser(
        "live", help="online incremental curation on a running service"
    )
    live_p.add_argument(
        "--server",
        default="http://127.0.0.1:8471",
        help="base URL of a running 'phocus serve' instance",
    )
    live_sub = live_p.add_subparsers(dest="live_command", required=True)

    def _photo_source(p: argparse.ArgumentParser, default_photos: int) -> None:
        p.add_argument("--tenant", required=True)
        p.add_argument("--id", required=True, dest="instance_id")
        p.add_argument(
            "--photos-file",
            help='JSON file {"costs": [...], "embeddings": [[...]]} '
            "(default: a synthetic archive)",
        )
        p.add_argument(
            "--photos",
            type=int,
            default=default_photos,
            help="synthetic photo count (ignored with --photos-file)",
        )
        p.add_argument("--dim", type=int, default=16)
        p.add_argument("--seed", type=int, default=0)

    lcreate_p = live_sub.add_parser(
        "create", help="build, cold-solve and store a live archive"
    )
    _photo_source(lcreate_p, 1000)
    lcreate_p.add_argument("--tau", type=float, default=0.8)
    lcreate_p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.1,
        help="budget as a fraction of the total corpus cost",
    )
    lcreate_p.add_argument(
        "--budget", type=float, help="absolute budget (overrides the fraction)"
    )
    lcreate_p.add_argument("--target-recall", type=float, default=0.95)
    lcreate_p.add_argument(
        "--no-solve",
        action="store_true",
        help="store the archive without an initial cold solve",
    )

    lingest_p = live_sub.add_parser(
        "ingest", help="upload a photo delta (one atomic version bump)"
    )
    _photo_source(lingest_p, 10)
    lingest_p.add_argument(
        "--resolve",
        default="warm",
        choices=["warm", "none"],
        help="warm re-solve inline, or defer curation to the sweep",
    )

    lstatus_p = live_sub.add_parser(
        "status", help="curation status of one live instance"
    )
    lstatus_p.add_argument("--tenant", required=True)
    lstatus_p.add_argument("--id", required=True, dest="instance_id")

    lrec_p = live_sub.add_parser(
        "recurate", help="force a warm or full re-solve now"
    )
    lrec_p.add_argument("--tenant", required=True)
    lrec_p.add_argument("--id", required=True, dest="instance_id")
    lrec_p.add_argument("--kind", default="warm", choices=["warm", "full"])

    scale_p = sub.add_parser(
        "scale", help="million-photo fused streamed builds (no dense SIM)"
    )
    scale_sub = scale_p.add_subparsers(dest="scale_command", required=True)
    sbuild_p = scale_sub.add_parser(
        "build",
        help="fused build: embeddings -> LSH candidates -> sparse CSR instance",
    )
    sbuild_p.add_argument(
        "--photos", type=int, default=100_000, help="synthetic archive size"
    )
    sbuild_p.add_argument("--dim", type=int, default=16, help="embedding dimension")
    sbuild_p.add_argument(
        "--tau", type=float, default=0.8, help="sparsification threshold"
    )
    sbuild_p.add_argument(
        "--budget-fraction",
        type=float,
        default=0.1,
        help="budget as a fraction of the total corpus cost",
    )
    sbuild_p.add_argument(
        "--dtype",
        default="float64",
        choices=["float64", "float32"],
        help="similarity value storage (float32 halves the value bytes)",
    )
    sbuild_p.add_argument("--seed", type=int, default=0)
    sbuild_p.add_argument(
        "--n-bits",
        type=int,
        help="explicit SimHash width (default: auto-scaled to the archive size)",
    )
    sbuild_p.add_argument("--target-recall", type=float, default=0.95)
    sbuild_p.add_argument(
        "--chunk-pairs",
        type=int,
        default=1 << 17,
        help="candidate/verification pairs per chunk (memory bound)",
    )
    sbuild_p.add_argument(
        "--signature-chunk",
        type=int,
        default=1 << 16,
        help="photos per signature matmul chunk",
    )
    sbuild_p.add_argument(
        "--out", metavar="PATH", help="write the built instance JSON atomically"
    )
    sbuild_p.add_argument(
        "--solve",
        action="store_true",
        help="also run the PHOcus greedy on the built instance",
    )

    obs_p = sub.add_parser(
        "obs", help="observability: dump metrics from a service or this process"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    dump_p = obs_sub.add_parser(
        "dump", help="print the Prometheus text exposition of the metrics registry"
    )
    dump_group = dump_p.add_mutually_exclusive_group()
    dump_group.add_argument(
        "--server",
        help="base URL of a running 'phocus serve' instance to scrape",
    )
    dump_group.add_argument(
        "--local",
        action="store_true",
        help="dump this process's registry (arms the probes if needed)",
    )
    dump_p.add_argument(
        "--spans",
        action="store_true",
        help="also print recently completed trace spans (local mode only)",
    )
    return parser


def _print_report(report: ArchiveReport) -> None:
    sol = report.solution
    print(f"algorithm            : {sol.algorithm}")
    print(f"objective value G(S) : {sol.value:.4f}")
    print(f"retained / archived  : {report.retained_count} / {report.archived_count}")
    print(
        f"cost                 : {sol.cost / MB:.2f} MB of {sol.budget / MB:.2f} MB "
        f"({report.budget_utilisation:.1%} used)"
    )
    print(f"solve time           : {sol.elapsed_seconds:.2f}s (+{report.prep_seconds:.2f}s prep)")
    if sol.ratio_certificate is not None:
        print(f"approx. certificate  : >= {sol.ratio_certificate:.3f} of optimal")
    if report.sparsify is not None:
        rep = report.sparsify
        print(
            f"sparsification       : tau={rep.tau} ({rep.method}), kept "
            f"{rep.kept_fraction:.1%} of entries, checked {rep.checked_fraction:.1%} of pairs"
        )
    if report.sparsification_guarantee is not None:
        print(f"tau-guarantee        : >= {report.sparsification_guarantee:.3f} (Theorem 4.8)")
    print("least-covered subsets:")
    for subset_id, value in report.worst_covered_subsets:
        print(f"  {subset_id:<40s} {value:.4f}")


def _cmd_datasets() -> int:
    print(f"{'name':<18} {'photos':>8} {'subsets':>8}  source")
    from repro.datasets.registry import TABLE2

    for name in dataset_names():
        cfg = TABLE2[name]
        print(f"{name:<18} {cfg.n_photos:>8} {cfg.n_subsets:>8}  {cfg.source}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if bool(args.dataset) == bool(args.dataset_file):
        print("error: provide exactly one of --dataset / --dataset-file", file=sys.stderr)
        return 2
    if args.dataset:
        dataset = load_named(args.dataset, scale=args.scale, seed=args.seed)
    else:
        dataset = load_dataset(args.dataset_file)

    if args.budget_mb is not None:
        budget = args.budget_mb * MB
    elif args.budget_fraction is not None:
        budget = dataset.total_cost() * args.budget_fraction
    else:
        budget = dataset.total_cost() * 0.1
        print("note: no budget given; defaulting to 10% of the corpus size")

    print(
        f"dataset {dataset.name}: {dataset.n_photos} photos, "
        f"{dataset.n_subsets} subsets, {dataset.total_cost_mb():.1f} MB total"
    )
    instance = dataset.instance(budget)
    if args.compress:
        from repro.extensions.compression import (
            expand_with_compression,
            selection_summary,
        )

        instance, variants = expand_with_compression(instance)
    config = PhocusConfig(
        algorithm=args.algorithm,
        tau=args.tau,
        sparsify_method=args.sparsify_method,
        certificate=not args.no_certificate,
        seed=args.seed,
    )
    if args.deadline_ms is not None:
        from repro.errors import DeadlineExceeded
        from repro.resilience import Deadline, deadline_scope

        try:
            with deadline_scope(Deadline(args.deadline_ms / 1000.0)):
                report = PHOcus(config).run(instance)
        except DeadlineExceeded as exc:
            progress = exc.progress() or {}
            print(
                f"error: deadline of {args.deadline_ms:g} ms expired "
                f"mid-solve (progress: {progress})",
                file=sys.stderr,
            )
            return 124
    else:
        report = PHOcus(config).run(instance)
    _print_report(report)
    if args.html_report:
        from repro.system.report_html import write_report_html

        written = write_report_html(report, args.html_report, instance)
        print(f"HTML report written to {written}")
    if args.compress:
        summary = selection_summary(report.solution.selection, variants)
        print(
            f"compression          : kept {summary['kept_original']} originals + "
            f"{summary['kept_compressed']} compressed renditions "
            f"({summary['distinct_photos']} distinct photos)"
        )
    return 0


def _cmd_fidelity(args: argparse.Namespace) -> int:
    from repro.fidelity import VariantCatalog, budget_frontier
    from repro.fidelity.policy import execute_fidelity_payload

    dataset = load_named(args.dataset, scale=args.scale, seed=args.seed)
    total = dataset.total_cost()
    if args.levels:
        try:
            pairs = [
                (float(f), float(s))
                for f, s in (lv.split(":") for lv in args.levels.split(",") if lv)
            ]
        except ValueError:
            print("error: --levels wants fidelity:size pairs", file=sys.stderr)
            return 2
        catalog = dataset.variant_catalog(pairs)
    else:
        catalog = dataset.variant_catalog()
    tiers = sorted(set(catalog.tier) - {"original"})
    print(
        f"dataset {dataset.name}: {dataset.n_photos} photos, "
        f"{dataset.total_cost_mb():.1f} MB total; "
        f"recompression tiers: {', '.join(tiers)}"
    )

    if args.budget_fractions:
        fractions = [float(f) for f in args.budget_fractions.split(",") if f]
        instance = dataset.instance(total)  # budget swept per point below
        doc = budget_frontier(
            instance,
            catalog,
            [total * f for f in fractions],
            upgrade=not args.no_upgrade,
        )
        print(
            f"{'budget':>10}  {'fidelity':>9}  {'discard':>9}  "
            f"{'winner':<8}  {'kept':>5}  {'recomp':>6}  {'upgrades':>8}"
        )
        for frac, point in zip(sorted(fractions), doc["points"]):
            q = point["quality"]
            print(
                f"{frac * 100:>9.1f}%  {point['fidelity_value']:>9.4f}  "
                f"{point['discard_value']:>9.4f}  "
                f"{point['frontier_policy']:<8}  {q['kept']:>5}  "
                f"{q['recompressed']:>6}  {point['upgrades']:>8}"
            )
        checks = doc["checks"]
        print(
            f"frontier dominates discard-only at "
            f"{'all' if checks['weakly_dominates_all'] else 'SOME'} budgets "
            f"(strictly at {checks['strict_points']}/{len(doc['points'])})"
        )
        return 0

    budget = total * args.budget_fraction
    instance = dataset.instance(budget)
    policy = {"mode": args.mode, "upgrade": not args.no_upgrade}
    doc = execute_fidelity_payload(
        {**policy, "catalog": catalog.to_dict()}, instance=instance
    )
    q = doc["quality"]
    print(
        f"budget               : {budget / MB:.1f} MB "
        f"({args.budget_fraction * 100:g}% of corpus)"
    )
    print(
        f"value                : {doc['value']:.4f} "
        f"({doc['mode']} pass, {doc['evaluations']} evaluations)"
    )
    print(
        f"kept                 : {q['kept']} of {q['photos']} photos "
        f"({q['kept_original']} originals + {q['recompressed']} recompressed, "
        f"{doc['upgrades']} upgrades)"
    )
    print(f"by tier              : {q['by_tier']}")
    print(
        f"mean fidelity        : {q['mean_fidelity']:.3f} "
        f"(budget used: {doc['budget_utilisation'] * 100:.1f}%)"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.harness import format_grid, run_quality_grid

    dataset = load_named(args.dataset, scale=args.scale, seed=args.seed)
    fractions = [float(f) for f in args.budget_fractions.split(",") if f]
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    unknown = set(algorithms) - set(available_algorithms())
    if unknown:
        print(f"error: unknown algorithms {sorted(unknown)}", file=sys.stderr)
        return 2
    total_mb = dataset.total_cost_mb()
    grid = run_quality_grid(
        dataset, [total_mb * f for f in fractions], algorithms, seed=args.seed
    )
    print(format_grid(grid))
    print(f"(maximum attainable score: {grid.max_value:.2f})")
    return 0


def _http(server: str, method: str, path: str, payload=None):
    """One JSON request against a running service; returns (status, doc)."""
    import json
    import urllib.error
    import urllib.request

    url = server.rstrip("/") + path
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method=method
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        try:
            return exc.code, json.loads(exc.read())
        except Exception:  # noqa: BLE001 - non-JSON error body
            return exc.code, {"error": str(exc)}


def _poll_job(server: str, job_id: str, interval: float) -> dict:
    import time

    last_state = None
    while True:
        status, doc = _http(server, "GET", f"/jobs/{job_id}")
        if status != 200:
            raise SystemExit(f"error: {doc.get('error', status)}")
        if doc["state"] != last_state:
            last_state = doc["state"]
            print(f"  job {job_id}: {last_state} (attempt {doc['attempt']})")
        if last_state in ("SUCCEEDED", "FAILED", "CANCELLED"):
            return doc
        time.sleep(interval)


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    server = args.server
    if args.jobs_command == "submit":
        with open(args.instance_file, "r", encoding="utf-8") as fh:
            instance_doc = json.load(fh)
        payload = {
            "instance": instance_doc,
            "algorithm": args.algorithm,
            "tau": args.tau,
            "tenant": args.tenant,
            "priority": args.priority,
            "timeout_seconds": args.timeout_seconds,
            "deadline_ms": args.deadline_ms,
            "max_attempts": args.max_attempts,
            "checkpoint_every": args.checkpoint_every,
            "certificate": args.certificate,
        }
        status, doc = _http(server, "POST", "/jobs", payload)
        if status == 429:
            print(
                f"error: queue full ({doc.get('queue_depth')}/{doc.get('queue_limit')}); "
                "retry later",
                file=sys.stderr,
            )
            return 1
        if status != 202:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        print(f"submitted job {doc['job_id']}")
        if args.wait:
            final = _poll_job(server, doc["job_id"], args.poll_interval)
            return 0 if final["state"] == "SUCCEEDED" else 1
        return 0
    if args.jobs_command == "status":
        if args.wait:
            doc = _poll_job(server, args.job_id, args.poll_interval)
        else:
            status, doc = _http(server, "GET", f"/jobs/{args.job_id}")
            if status != 200:
                print(f"error: {doc.get('error', status)}", file=sys.stderr)
                return 1
        doc.pop("result", None)
        doc.pop("spec", None)
        print(json.dumps(doc, indent=2))
        return 0
    if args.jobs_command == "result":
        status, doc = _http(server, "GET", f"/jobs/{args.job_id}")
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        if doc["state"] != "SUCCEEDED":
            print(
                f"error: job {args.job_id} is {doc['state']}"
                + (f" ({doc['error']})" if doc.get("error") else ""),
                file=sys.stderr,
            )
            return 1
        print(json.dumps(doc["result"], indent=2))
        return 0
    if args.jobs_command == "cancel":
        status, doc = _http(server, "DELETE", f"/jobs/{args.job_id}")
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        verb = "cancelled" if doc.get("cancelled") else "not cancellable"
        print(f"job {args.job_id}: {verb} (state {doc.get('state')})")
        return 0
    if args.jobs_command == "list":
        query = []
        if args.state:
            query.append(f"state={args.state}")
        if args.tenant:
            query.append(f"tenant={args.tenant}")
        suffix = "?" + "&".join(query) if query else ""
        status, doc = _http(server, "GET", f"/jobs{suffix}")
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        print(f"{'job id':<18} {'tenant':<12} {'state':<10} {'attempt':>7}  error")
        for job in doc["jobs"]:
            print(
                f"{job['job_id']:<18} {job['tenant']:<12} {job['state']:<10} "
                f"{job['attempt']:>7}  {job.get('error') or ''}"
            )
        return 0
    # stats
    status, doc = _http(server, "GET", "/stats")
    if status != 200:
        print(f"error: {doc.get('error', status)}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2))
    return 0


def _cmd_tenants(args: argparse.Namespace) -> int:
    import json

    server = args.server
    base = f"/tenants/{args.tenant}"
    if args.tenants_command == "upload":
        with open(args.instance_file, "r", encoding="utf-8") as fh:
            instance_doc = json.load(fh)
        status, doc = _http(
            server,
            "PUT",
            f"{base}/instances/{args.instance_id}",
            {"instance": instance_doc},
        )
        if status not in (200, 201):
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        meta = doc["stored"]
        verb = "created" if status == 201 else "updated"
        print(
            f"{verb} {args.tenant}/{args.instance_id} "
            f"(version {meta['version']}, {meta['nbytes']} bytes)"
        )
        return 0
    if args.tenants_command == "list":
        status, doc = _http(server, "GET", f"{base}/instances")
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        print(f"{'instance id':<32} {'version':>7} {'bytes':>12}")
        for meta in doc["instances"]:
            print(
                f"{meta['instance_id']:<32} {meta['version']:>7} "
                f"{meta['nbytes']:>12}"
            )
        return 0
    if args.tenants_command == "rm":
        status, doc = _http(server, "DELETE", f"{base}/instances/{args.instance_id}")
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        print(f"deleted {args.tenant}/{args.instance_id}")
        return 0
    # stats
    status, doc = _http(server, "GET", f"{base}/stats")
    if status != 200:
        print(f"error: {doc.get('error', status)}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2))
    return 0


def _load_photos(args: argparse.Namespace):
    """The (costs, embeddings) payload of a live create/ingest command."""
    import json

    if args.photos_file:
        with open(args.photos_file, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        return list(doc["costs"]), [list(row) for row in doc["embeddings"]]
    from repro.scale import synthetic_archive

    costs, embeddings = synthetic_archive(
        args.photos, dim=args.dim, seed=args.seed
    )
    return costs.tolist(), embeddings.tolist()


def _print_live_solution(doc: dict) -> None:
    solution = doc.get("solution")
    if solution is None:
        print("  solution     : none (deferred to the re-curation sweep)")
        return
    print(
        f"  solution     : {solution['kind']} {solution['mode']}, value "
        f"{solution['value']:.4f}, {len(solution['selection'])} photos kept"
    )
    print(
        f"  regret bound : {solution['regret_bound']:.4%} of the certified "
        f"optimum upper bound ({solution['upper_bound']:.4f})"
    )
    if solution.get("evicted") or solution.get("added"):
        print(
            f"  churn        : +{len(solution.get('added', []))} "
            f"-{len(solution.get('evicted', []))} photos vs previous"
        )


def _cmd_live(args: argparse.Namespace) -> int:
    import json

    server = args.server
    base = f"/tenants/{args.tenant}/instances/{args.instance_id}"
    if args.live_command == "create":
        costs, embeddings = _load_photos(args)
        budget = (
            args.budget
            if args.budget is not None
            else sum(costs) * args.budget_fraction
        )
        payload = {
            "costs": costs,
            "embeddings": embeddings,
            "budget": budget,
            "tau": args.tau,
            "seed": args.seed,
            "target_recall": args.target_recall,
            "solve": not args.no_solve,
        }
        status, doc = _http(server, "POST", f"{base}/live", payload)
        if status != 201:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        build = doc["build"]
        print(
            f"created live {args.tenant}/{args.instance_id} version "
            f"{doc['version']}: {build['n_photos']} photos, "
            f"{build['nnz']} similarity entries"
        )
        _print_live_solution(doc)
        return 0
    if args.live_command == "ingest":
        costs, embeddings = _load_photos(args)
        payload = {
            "costs": costs,
            "embeddings": embeddings,
            "resolve": args.resolve,
        }
        status, doc = _http(server, "POST", f"{base}/photos", payload)
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        delta = doc["delta"]
        print(
            f"ingested {delta['n_added']} photos into "
            f"{args.tenant}/{args.instance_id} (version {doc['version']}, "
            f"{delta['n_before']} -> {delta['n_before'] + delta['n_added']} "
            f"photos, {delta['seconds']:.3f}s)"
        )
        if args.resolve == "none":
            print(f"  pending      : {doc['pending_deltas']} deferred delta(s)")
        _print_live_solution(doc)
        return 0
    if args.live_command == "recurate":
        status, doc = _http(
            server, "POST", f"{base}/recurate", {"kind": args.kind}
        )
        if status == 409:
            print(
                "error: a concurrent ingest moved the instance; retry",
                file=sys.stderr,
            )
            return 1
        if status != 200:
            print(f"error: {doc.get('error', status)}", file=sys.stderr)
            return 1
        print(
            f"recurated {args.tenant}/{args.instance_id} "
            f"({args.kind}, version {doc['version']})"
        )
        _print_live_solution(doc)
        return 0
    # status
    status, doc = _http(server, "GET", f"{base}/live")
    if status != 200:
        print(f"error: {doc.get('error', status)}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``phocus obs dump``: print a Prometheus exposition to stdout.

    ``--server URL`` scrapes a running service's ``GET /metrics``;
    ``--local`` (the default) renders this process's own registry —
    mostly useful after library calls in the same interpreter, or as a
    quick way to eyeball the metric catalog.
    """
    import json as _json
    import urllib.error
    import urllib.request

    if args.server:
        url = args.server.rstrip("/") + "/metrics"
        try:
            with urllib.request.urlopen(url) as resp:
                sys.stdout.write(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                doc = _json.loads(exc.read())
                message = doc.get("error", str(exc))
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc)
            print(f"error: {message}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        return 0

    from repro.obs import probes, recent_spans
    from repro.obs.prom import render_registry

    instruments = probes.arm()  # reuses the registry when already armed
    sys.stdout.write(render_registry(instruments.registry))
    if args.spans:
        spans = recent_spans()
        print(f"# {len(spans)} recent span(s)", file=sys.stderr)
        for record in spans:
            print(_json.dumps(record.to_dict()), file=sys.stderr)
    return 0


def _cmd_demo() -> int:
    instance = figure1_instance(budget_mb=4.0)
    print("Figure 1 instance: 7 photos, 4 subsets (Bikes/Cats/Bookshelf/Books), 4 Mb budget")
    run = lazy_greedy(instance, UC, trace=True)
    print("Algorithm 2 (UC) trace:")
    for photo_id, gain in run.picks:
        print(f"  pick p{photo_id + 1}  (marginal gain {gain:.3f})")
    print("\nFigure 3 step-by-step (lazy refreshes and selections):")
    current_step = 0
    for event in run.trace:
        if event.step != current_step:
            current_step = event.step
            print(f"  Step {current_step}:")
        verb = {"refresh": "recalculate", "select": "SELECT", "drop": "drop"}[event.kind]
        print(f"    {verb} p{event.photo_id + 1}  (δ = {event.gain:.2f})")
    print(f"final value {run.value:.3f}, cost {run.cost / MB:.1f} Mb")
    report = PHOcus(PhocusConfig(certificate=True)).run(instance)
    print()
    _print_report(report)
    return 0


def _cmd_scale(args) -> int:
    import numpy as np

    from repro.scale import (
        build_streamed_instance,
        save_streamed_instance,
        synthetic_archive,
    )

    costs, embeddings = synthetic_archive(args.photos, dim=args.dim, seed=args.seed)
    budget = float(costs.sum()) * args.budget_fraction
    instance, report = build_streamed_instance(
        costs,
        embeddings,
        budget,
        tau=args.tau,
        n_bits="auto" if args.n_bits is None else args.n_bits,
        target_recall=args.target_recall,
        rng=args.seed,
        dtype=np.dtype(args.dtype),
        chunk_pairs=args.chunk_pairs,
        signature_chunk=args.signature_chunk,
    )
    total = report.n_photos * (report.n_photos - 1) // 2
    print(f"[scale build] {report.n_photos} photos, dim {report.dim}, tau {report.tau}")
    print(
        f"  lsh                  : {report.n_bits} bits = {report.bands} bands "
        f"x {report.rows} rows (recall target {report.target_recall})"
    )
    print(
        f"  candidates           : {report.candidate_pairs} "
        f"({report.candidate_fraction:.2e} of {total} possible pairs)"
    )
    print(
        f"  kept / nnz           : {report.kept_pairs} pairs -> {report.nnz} "
        f"stored entries ({report.dtype})"
    )
    phases = ", ".join(
        f"{name} {secs:.2f}s" for name, secs in report.phase_seconds.items()
    )
    print(f"  build time           : {report.build_seconds:.2f}s ({phases})")
    if args.out:
        nbytes = save_streamed_instance(instance, args.out)
        print(f"  wrote                : {args.out} ({nbytes / 1e6:.1f} MB)")
    if args.solve:
        import time as _time

        from repro.core.greedy import main_algorithm

        t0 = _time.perf_counter()
        solution = main_algorithm(instance)
        solve_seconds = _time.perf_counter() - t0
        print(
            f"  solve                : value {solution.value:.4f}, "
            f"{len(solution.selection)} photos kept, "
            f"{solution.cost / MB:.1f} of {budget / MB:.1f} MB "
            f"in {solve_seconds:.2f}s"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "fidelity":
        return _cmd_fidelity(args)
    if args.command == "inspect":
        from repro.system.analysis import analyze_instance

        dataset = load_named(args.dataset, scale=args.scale, seed=args.seed)
        instance = dataset.instance(dataset.total_cost() * args.budget_fraction)
        print(f"[{dataset.name}] instance diagnostics")
        for line in analyze_instance(instance).summary_lines():
            print(line)
        return 0
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "tenants":
        return _cmd_tenants(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "serve":
        from repro.system.service import PhocusService

        tenant_quota = None
        if (
            args.tenant_max_bytes is not None
            or args.tenant_max_instances is not None
            or args.tenant_rate is not None
        ):
            from repro.tenants import TenantQuota

            tenant_quota = TenantQuota(
                max_bytes=args.tenant_max_bytes,
                max_instances=args.tenant_max_instances,
                rate_per_second=args.tenant_rate,
                burst=args.tenant_burst,
            )
        from repro.resilience import (
            AdmissionController,
            BrownoutPolicy,
            DrainController,
            Resilience,
        )

        # Always carry a bundle so SIGTERM drains gracefully; admission
        # and brownout stay off unless their flags opt in.
        resilience = Resilience(
            admission=(
                AdmissionController(
                    args.max_inflight,
                    target_wait_seconds=args.target_wait_seconds,
                )
                if args.max_inflight
                else None
            ),
            brownout=(
                BrownoutPolicy(tau=args.brownout_tau)
                if args.brownout_tau is not None
                else None
            ),
            drain=DrainController(grace_seconds=args.drain_grace),
            default_deadline_ms=args.default_deadline_ms,
        )
        service = PhocusService(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_depth=args.queue_depth,
            journal_path=args.journal,
            checkpoint_every=args.checkpoint_every,
            metrics=args.metrics,
            access_log=args.access_log,
            tenants_root=args.tenants_root,
            tenants_cache_bytes=args.tenants_cache_mb * 1024 * 1024,
            tenant_quota=tenant_quota,
            resilience=resilience,
            recuration=args.recuration,
            recuration_interval=args.recuration_interval,
            recuration_debounce=args.recuration_debounce,
            recuration_regret=args.recuration_regret,
        ).start()
        print(f"PHOcus solver service listening on http://{service.address}")
        print(
            "endpoints: GET /health(z), GET /readyz, GET /version, GET /algorithms,\n"
            "           POST /solve, POST /score, POST /jobs, GET /jobs,\n"
            "           GET /jobs/<id>, DELETE /jobs/<id>, GET /stats"
            + (", GET /metrics" if args.metrics else "")
            + (
                ",\n           PUT/GET/DELETE /tenants/<t>/instances/<i>, "
                "GET /tenants/<t>/stats,\n"
                "           POST/GET .../instances/<i>/live, "
                "POST .../instances/<i>/photos,\n"
                "           POST .../instances/<i>/recurate"
                if args.tenants_root
                else ""
            )
        )
        # SIGTERM triggers the graceful drain (stop accepting → checkpoint
        # running jobs → release leases → flush journal); SIGINT / Ctrl-C
        # stays a fast exit.  The handler only sets an event — the drain
        # itself runs on the main thread, never in signal context.
        import signal
        import threading as _threading

        sigterm = _threading.Event()
        try:
            signal.signal(signal.SIGTERM, lambda signum, frame: sigterm.set())
        except (AttributeError, ValueError):  # Windows / non-main thread
            pass
        try:
            while not sigterm.wait(0.5):
                pass
            print("SIGTERM: draining...", file=sys.stderr)
            summary = service.drain(grace_seconds=args.drain_grace)
            print(f"drain complete: {summary}", file=sys.stderr)
        except KeyboardInterrupt:
            pass
        finally:
            service.stop()
        return 0
    if args.command == "demo":
        return _cmd_demo()
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
