"""PHOcus — reproduction of "Efficiently Archiving Photos under Storage
Constraints" (Davidson, Gershtein, Milo, Novgorodov, Shoshan — EDBT 2023).

The library is organised as:

* :mod:`repro.core` — the PAR model, objective and every solver
  (Algorithms 1/2, Sviridenko, exact, baselines, bounds);
* :mod:`repro.sparsify` — τ-sparsification and SimHash LSH (Section 4.3);
* :mod:`repro.gfl` — the Generalised Facility Location formulation;
* :mod:`repro.similarity` — cosine and contextual similarity derivation;
* :mod:`repro.images` — the synthetic photo substrate (scenes, features,
  embeddings, EXIF, quality);
* :mod:`repro.search` — the BM25 engine used to derive subsets from queries;
* :mod:`repro.datasets` — generators for the paper's eight datasets;
* :mod:`repro.storage` — tiered archive simulator + retention policies;
* :mod:`repro.study` — the simulated user study (analyst model, gold
  standard);
* :mod:`repro.system` — the end-to-end PHOcus pipeline and CLI.

Quickstart::

    from repro import figure1_instance, solve
    solution = solve(figure1_instance(budget_mb=4.0), "phocus")
    print(solution.selection, solution.value)
"""

from repro.core import (
    CoverageState,
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
    Solution,
    SparseSimilarity,
    SubsetSpec,
    available_algorithms,
    main_algorithm,
    max_score,
    online_bound,
    score,
    score_breakdown,
    solve,
)
from repro.core.paper_example import figure1_instance
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PARInstance",
    "Photo",
    "PredefinedSubset",
    "SubsetSpec",
    "DenseSimilarity",
    "SparseSimilarity",
    "CoverageState",
    "Solution",
    "solve",
    "available_algorithms",
    "main_algorithm",
    "score",
    "score_breakdown",
    "max_score",
    "online_bound",
    "figure1_instance",
    "ReproError",
    "ValidationError",
    "InfeasibleError",
    "ConfigurationError",
]
