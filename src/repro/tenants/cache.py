"""Shared-memory warm cache: hot tenants skip deserialise + pack entirely.

A ``by_ref`` solve has two expensive prefixes before any greedy work:
parsing the stored JSON document into a :class:`PARInstance`, and (for
process-pool solves) packing its arrays into a shared-memory segment.
Both are pure functions of ``(tenant, instance_id, version)`` — so this
cache keys exactly on that triple and keeps the *packed*
:class:`~repro.core.parallel.SharedInstance` resident:

* the threaded service serves a warm solve as zero-copy numpy views over
  the owned segment (:meth:`SharedInstance.materialize` — microseconds);
* worker processes attach the same segment by name
  (:func:`repro.core.parallel.attach_instance`) with nothing but a small
  spec dict crossing the pickle boundary.

Residency and eviction are delegated to the shared
:class:`repro.lru.ByteBudgetLRU`; this module adds the parts unique to
shared memory:

**Leases.**  Entries are refcounted.  :meth:`lease` yields a view
instance and holds a reference for the duration; eviction of a leased
entry is deferred — the segment is closed *and unlinked* when the last
lease releases, so a solve mid-flight can never have its arrays unmapped
underneath it.  Evicted-but-stuck entries (a destroy interrupted by an
injected fault) park on a zombie list that every subsequent operation
retries, so a transient failure delays reclamation but never leaks.

**Crash-safety sweep.**  Segments are named
``<prefix>-<pid>-<seq>``.  If a process dies hard, its eviction code
never runs and the kernel keeps the segment alive indefinitely.  On
startup, :func:`sweep_leaked_segments` scans ``/dev/shm`` for
same-prefix segments whose creator pid is gone and unlinks them — the
same recovery stance the job journal takes for half-finished jobs.
"""

from __future__ import annotations

import itertools
import logging
import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import faults
from repro.core.instance import PARInstance
from repro.core.parallel import SharedInstance
from repro.lru import ByteBudgetLRU
from repro.obs import probes as _obs_probes

__all__ = ["WarmCache", "CacheKey", "sweep_leaked_segments", "DEFAULT_PREFIX"]

logger = logging.getLogger(__name__)

#: (tenant, instance_id, version) — the cache key; version makes stale
#: packings of an overwritten upload unreachable rather than invalidated.
CacheKey = Tuple[str, str, int]

DEFAULT_PREFIX = "phocus-tenants"
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def sweep_leaked_segments(prefix: str = DEFAULT_PREFIX) -> List[str]:
    """Unlink warm-cache segments whose creating process is dead.

    Returns the reclaimed names.  Linux-only by construction (POSIX
    shared memory appears under ``/dev/shm``; unlinking the file *is*
    ``shm_unlink``); elsewhere this is a no-op.  Segments created by
    *live* processes — including this one — are left alone.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    reclaimed: List[str] = []
    marker = prefix + "-"
    for name in sorted(os.listdir(_SHM_DIR)):
        if not name.startswith(marker):
            continue
        pid_str = name[len(marker) :].split("-", 1)[0]
        if not pid_str.isdigit():
            continue
        pid = int(pid_str)
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
        logger.warning(
            "tenant cache: reclaimed shared-memory segment %s leaked by dead "
            "process %d",
            name,
            pid,
        )
        reclaimed.append(name)
    return reclaimed


class _Entry:
    """One cached packing plus its lease state (guarded by the cache lock)."""

    __slots__ = ("key", "shared", "refs", "evicted")

    def __init__(self, key: CacheKey, shared: SharedInstance) -> None:
        self.key = key
        self.shared = shared
        self.refs = 0
        self.evicted = False


class WarmCache:
    """Byte-capacity LRU of packed shared-memory instances.

    ``capacity_bytes=0`` disables caching: every lease packs a transient
    segment and destroys it on release (the cold path, always).  The
    constructor runs the leak sweep unless ``sweep=False`` (tests that
    stage fake leaked segments drive it explicitly).
    """

    def __init__(
        self,
        capacity_bytes: float = 256 * 1024 * 1024,
        *,
        name_prefix: str = DEFAULT_PREFIX,
        sweep: bool = True,
    ) -> None:
        self._prefix = name_prefix
        self._lock = threading.RLock()
        self._lru: Optional[ByteBudgetLRU] = (
            ByteBudgetLRU(capacity_bytes, on_evict=self._on_evict)
            if capacity_bytes > 0
            else None
        )
        self._building: Dict[CacheKey, threading.Event] = {}
        self._zombies: List[_Entry] = []
        self._seq = itertools.count()
        self.hits = 0
        self.misses = 0
        self.swept = sweep_leaked_segments(name_prefix) if sweep else []

    # -------------------------------------------------------------- leasing

    @contextmanager
    def lease(
        self,
        key: CacheKey,
        loader: Callable[[], PARInstance],
        *,
        budget: Optional[float] = None,
    ) -> Iterator[Tuple[PARInstance, bool]]:
        """Yield ``(view_instance, was_hit)`` for ``key``.

        On a miss, ``loader()`` produces the deserialised instance (the
        expensive part, run outside the cache lock) which is packed,
        admitted, and leased in one step.  The entry cannot be evicted
        out from under the lease; release-time eviction closes and
        unlinks its segment.
        """
        entry, hit = self._acquire(key, loader)
        try:
            yield entry.shared.materialize(budget=budget), hit
        finally:
            self._release(entry)

    def _acquire(
        self, key: CacheKey, loader: Callable[[], PARInstance]
    ) -> Tuple[_Entry, bool]:
        tenant = key[0]
        while True:
            with self._lock:
                self._reap_zombies_locked()
                entry = self._lru.get(key) if self._lru is not None else None
                if entry is not None:
                    entry.refs += 1
                    self.hits += 1
                    self._count(tenant, hit=True)
                    return entry, True
                pending = self._building.get(key)
                if pending is None:
                    self._building[key] = threading.Event()
                    break
            # Another thread is packing this key; wait and retry the lookup.
            pending.wait(timeout=30.0)

        try:
            instance = loader()
            shared = SharedInstance(instance, name=self._segment_name())
            entry = _Entry(key, shared)
            entry.refs = 1
            with self._lock:
                self.misses += 1
                self._count(tenant, hit=False)
                admitted = self._lru is not None and self._lru.put(
                    key, entry, shared.nbytes
                )
                if not admitted:
                    # Too big for the cache (or caching disabled): serve it
                    # as a transient segment, destroyed on release.
                    entry.evicted = True
                self._gauge()
            return entry, False
        finally:
            with self._lock:
                self._building.pop(key).set()

    def _release(self, entry: _Entry) -> None:
        with self._lock:
            entry.refs -= 1
            if entry.evicted and entry.refs == 0:
                self._destroy_locked(entry)
            self._reap_zombies_locked()

    # ------------------------------------------------------------- eviction

    def _on_evict(self, key: CacheKey, entry: _Entry) -> None:
        # Runs under the cache lock (every LRU mutation happens there).
        entry.evicted = True
        obs = _obs_probes.active()
        if obs is not None:
            obs.tenants_cache_evictions.labels(tenant=key[0]).inc()
        if entry.refs == 0:
            self._destroy_locked(entry)

    def _destroy_locked(self, entry: _Entry) -> None:
        """Close + unlink an entry's segment; park it on failure, never leak."""
        try:
            faults.check("tenantcache.evict")
            entry.shared.close()
        except Exception as exc:  # noqa: BLE001 - reclamation must not raise
            logger.warning(
                "tenant cache: deferred segment reclaim for %s (%s); will retry",
                entry.key,
                exc,
            )
            self._zombies.append(entry)

    def _reap_zombies_locked(self) -> None:
        still_stuck: List[_Entry] = []
        for entry in self._zombies:
            if entry.refs > 0:
                still_stuck.append(entry)
                continue
            try:
                entry.shared.close()
            except Exception:  # noqa: BLE001 - keep retrying next time
                still_stuck.append(entry)
        self._zombies = still_stuck

    # ----------------------------------------------------------- management

    def invalidate(self, tenant: str, instance_id: Optional[str] = None) -> int:
        """Evict every cached version for a tenant (or one instance of it)."""
        if self._lru is None:
            return 0
        with self._lock:
            victims = [
                key
                for key in self._lru.keys()
                if key[0] == tenant
                and (instance_id is None or key[1] == instance_id)
            ]
            for key in victims:
                entry = self._lru.pop(key)
                self._on_evict(key, entry)
            self._gauge()
            return len(victims)

    def close(self) -> None:
        """Evict and reclaim everything (service shutdown)."""
        with self._lock:
            if self._lru is not None:
                self._lru.clear()
            self._reap_zombies_locked()
            self._gauge()

    def stats(self) -> Dict[str, Any]:
        lru = self._lru  # NB: an empty ByteBudgetLRU is falsy (len == 0)
        with self._lock:
            return {
                "capacity_bytes": lru.capacity if lru is not None else 0,
                "used_bytes": lru.used_bytes if lru is not None else 0,
                "entries": len(lru) if lru is not None else 0,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": lru.evictions if lru is not None else 0,
                "zombie_segments": len(self._zombies),
                "swept_on_startup": list(self.swept),
            }

    # ------------------------------------------------------------ internals

    def _segment_name(self) -> str:
        return f"{self._prefix}-{os.getpid()}-{next(self._seq)}"

    @staticmethod
    def _count(tenant: str, *, hit: bool) -> None:
        obs = _obs_probes.active()
        if obs is not None:
            family = obs.tenants_cache_hits if hit else obs.tenants_cache_misses
            family.labels(tenant=tenant).inc()

    def _gauge(self) -> None:
        obs = _obs_probes.active()
        if obs is not None and self._lru is not None:
            obs.tenants_cache_bytes.set(self._lru.used_bytes)
