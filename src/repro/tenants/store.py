"""Persistent per-tenant instance store: upload once, solve by reference.

The store holds serialised :class:`~repro.core.instance.PARInstance`
documents on disk, one file per ``(tenant, instance)``::

    <root>/
      <tenant_id>/
        <instance_id>.inst                  # CRC-framed JSON envelope
        <instance_id>.inst.quarantine       # corrupt blob moved aside

Every write goes through :func:`repro.ioutil.atomic_write_bytes` (site
``tenantstore`` — chaos tests can crash the write, the fsync, or the
rename), so a crash leaves either the previous version or the new one,
never a torn file.  The on-disk format reuses the job journal's framing:
one line of ``crc32-hex SP json``, where the JSON envelope carries the
instance document plus its metadata (version, timestamps, byte size).

Loads verify the CRC.  A corrupt blob — bit rot, a torn legacy write, an
editor accident — is *quarantined*: renamed aside (never deleted; the
bytes may still be partially salvageable by hand), logged, counted, and
reported to callers as :class:`~repro.errors.InstanceNotFound` so the
service answers 404 rather than 500.

``put`` is versioned: each overwrite bumps a monotonically increasing
``version``, which the warm cache uses as part of its key, so a stale
cached packing can never serve a newer upload.  Storage quotas
(:class:`~repro.tenants.quota.QuotaPolicy`) are enforced under the store
lock using post-write totals, so concurrent uploads cannot overshoot.

Identifiers (tenant and instance ids) are restricted to
``[A-Za-z0-9._-]``, max 64 chars, not starting with a dot — they become
path components, and this closes traversal at the validation layer.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import faults
from repro.errors import InstanceNotFound, ValidationError
from repro.ioutil import atomic_write_bytes
from repro.obs import probes as _obs_probes
from repro.tenants.quota import QuotaPolicy

__all__ = ["TenantStore", "StoredInstance", "validate_id"]

logger = logging.getLogger(__name__)

_FORMAT = 1
_SUFFIX = ".inst"
_ID_RE = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]{0,63}$")


def validate_id(value: str, what: str) -> str:
    """Path-safe tenant / instance identifier, or :class:`ValidationError`."""
    if not isinstance(value, str) or not _ID_RE.match(value):
        raise ValidationError(
            f"{what} must match [A-Za-z0-9._-]{{1,64}} (not starting with '.'), "
            f"got {value!r}"
        )
    return value


@dataclass(frozen=True)
class StoredInstance:
    """Metadata of one stored instance (the index entry; no payload)."""

    tenant: str
    instance_id: str
    version: int
    nbytes: int  # on-disk envelope size
    created_at: float
    updated_at: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "instance_id": self.instance_id,
            "version": self.version,
            "nbytes": self.nbytes,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }


def _encode_envelope(doc: Dict[str, Any]) -> bytes:
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + payload + b"\n"


def _decode_envelope(blob: bytes) -> Dict[str, Any]:
    """Parse a CRC-framed envelope; ``ValueError`` on any defect."""
    if len(blob) < 10 or blob[8:9] != b" ":
        raise ValueError("missing CRC frame")
    try:
        expected = int(blob[:8].decode("ascii"), 16)
    except (UnicodeDecodeError, ValueError):
        raise ValueError("malformed CRC prefix") from None
    payload = blob[9:].rstrip(b"\n")
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        raise ValueError("envelope CRC32 mismatch")
    doc = json.loads(payload.decode("utf-8"))
    if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
        raise ValueError(f"unsupported envelope format {doc.get('format')!r}")
    return doc


class TenantStore:
    """Durable tenant-scoped instance blobs with a scanned in-memory index."""

    def __init__(
        self, root: str, *, quota_policy: Optional[QuotaPolicy] = None
    ) -> None:
        self.root = os.fspath(root)
        self.quotas = quota_policy or QuotaPolicy()
        self._lock = threading.RLock()
        # tenant -> instance_id -> StoredInstance
        self._index: Dict[str, Dict[str, StoredInstance]] = {}
        self.quarantined_count = 0
        os.makedirs(self.root, exist_ok=True)
        self._scan()

    # ------------------------------------------------------------ index scan

    def _path(self, tenant: str, instance_id: str) -> str:
        return os.path.join(self.root, tenant, instance_id + _SUFFIX)

    def _scan(self) -> None:
        """Build the index from disk; quarantine anything unreadable."""
        for tenant in sorted(os.listdir(self.root)):
            tenant_dir = os.path.join(self.root, tenant)
            if not os.path.isdir(tenant_dir) or not _ID_RE.match(tenant):
                continue
            for entry in sorted(os.listdir(tenant_dir)):
                if not entry.endswith(_SUFFIX):
                    continue
                instance_id = entry[: -len(_SUFFIX)]
                path = os.path.join(tenant_dir, entry)
                try:
                    envelope = self._read_envelope(path)
                except (OSError, ValueError) as exc:
                    self._quarantine(path, exc)
                    continue
                meta = StoredInstance(
                    tenant=tenant,
                    instance_id=instance_id,
                    version=int(envelope.get("version", 1)),
                    nbytes=os.path.getsize(path),
                    created_at=float(envelope.get("created_at", 0.0)),
                    updated_at=float(envelope.get("updated_at", 0.0)),
                )
                self._index.setdefault(tenant, {})[instance_id] = meta

    @staticmethod
    def _read_envelope(path: str) -> Dict[str, Any]:
        faults.check("tenantstore.load")
        with open(path, "rb") as fh:
            return _decode_envelope(fh.read())

    def _quarantine(self, path: str, exc: Exception) -> None:
        """Move a corrupt blob aside (never delete); count + log it."""
        quarantine_path = path + ".quarantine"
        try:
            os.replace(path, quarantine_path)
        except OSError:
            quarantine_path = "<unmovable>"
        self.quarantined_count += 1
        logger.warning(
            "tenant store: quarantined corrupt blob %s -> %s (%s)",
            path,
            quarantine_path,
            exc,
        )

    # ----------------------------------------------------------------- CRUD

    def put(
        self, tenant: str, instance_id: str, instance_doc: Dict[str, Any]
    ) -> StoredInstance:
        """Store (or overwrite) an instance document; returns its metadata.

        The caller is expected to have validated ``instance_doc`` (the
        service deserialises it first so garbage is rejected with 422
        before any disk write).  Raises
        :class:`~repro.errors.QuotaExceeded` without writing when the
        post-write totals would violate the tenant's quota.
        """
        validate_id(tenant, "tenant id")
        validate_id(instance_id, "instance id")
        if not isinstance(instance_doc, dict):
            raise ValidationError("instance document must be an object")
        now = time.time()
        with self._lock:
            existing = self._index.get(tenant, {}).get(instance_id)
            envelope = {
                "format": _FORMAT,
                "tenant": tenant,
                "instance_id": instance_id,
                "version": (existing.version + 1) if existing else 1,
                "created_at": existing.created_at if existing else now,
                "updated_at": now,
                "instance": instance_doc,
            }
            blob = _encode_envelope(envelope)
            used = self.tenant_bytes(tenant) - (existing.nbytes if existing else 0)
            count = len(self._index.get(tenant, {})) - (1 if existing else 0)
            self.quotas.check_storage(
                tenant, new_bytes=used + len(blob), new_instances=count + 1
            )
            path = self._path(tenant, instance_id)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_bytes(path, blob, site="tenantstore")
            meta = StoredInstance(
                tenant=tenant,
                instance_id=instance_id,
                version=envelope["version"],
                nbytes=len(blob),
                created_at=envelope["created_at"],
                updated_at=now,
            )
            self._index.setdefault(tenant, {})[instance_id] = meta
            self._gauge(tenant)
            return meta

    def get(self, tenant: str, instance_id: str) -> Dict[str, Any]:
        """The full stored envelope (metadata + ``instance`` document).

        A CRC/parse failure quarantines the blob, drops it from the
        index, and raises :class:`InstanceNotFound` — a corrupt blob is
        indistinguishable from a missing one to callers, by design.
        """
        with self._lock:
            meta = self._meta(tenant, instance_id)
            path = self._path(tenant, instance_id)
            try:
                envelope = self._read_envelope(path)
            except (OSError, ValueError) as exc:
                self._quarantine(path, exc)
                self._index[tenant].pop(instance_id, None)
                self._gauge(tenant)
                raise InstanceNotFound(
                    f"instance {instance_id!r} of tenant {tenant!r} is corrupt "
                    "and was quarantined"
                ) from exc
            return envelope

    def meta(self, tenant: str, instance_id: str) -> StoredInstance:
        with self._lock:
            return self._meta(tenant, instance_id)

    def _meta(self, tenant: str, instance_id: str) -> StoredInstance:
        meta = self._index.get(tenant, {}).get(instance_id)
        if meta is None:
            raise InstanceNotFound(
                f"no instance {instance_id!r} stored for tenant {tenant!r}"
            )
        return meta

    def delete(self, tenant: str, instance_id: str) -> StoredInstance:
        """Remove an instance; returns the metadata it had."""
        with self._lock:
            meta = self._meta(tenant, instance_id)
            try:
                os.unlink(self._path(tenant, instance_id))
            except FileNotFoundError:  # pragma: no cover - index ahead of disk
                pass
            del self._index[tenant][instance_id]
            if not self._index[tenant]:
                del self._index[tenant]
            self._gauge(tenant)
            return meta

    # ------------------------------------------------------------- listings

    def list_instances(self, tenant: str) -> List[StoredInstance]:
        with self._lock:
            return sorted(
                self._index.get(tenant, {}).values(),
                key=lambda m: m.instance_id,
            )

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._index)

    def tenant_bytes(self, tenant: str) -> int:
        with self._lock:
            return sum(m.nbytes for m in self._index.get(tenant, {}).values())

    def stats(self, tenant: str) -> Dict[str, Any]:
        with self._lock:
            instances = self._index.get(tenant, {})
            return {
                "instances": len(instances),
                "bytes": sum(m.nbytes for m in instances.values()),
                "quarantined_total": self.quarantined_count,
            }

    def _gauge(self, tenant: str) -> None:
        # Called under the store lock after every mutation.
        obs = _obs_probes.active()
        if obs is not None:
            instances = self._index.get(tenant, {})
            obs.tenants_store_bytes.labels(tenant=tenant).set(
                sum(m.nbytes for m in instances.values())
            )
            obs.tenants_store_instances.labels(tenant=tenant).set(len(instances))
