"""Multi-tenant archive store: upload instances once, solve by reference.

The service-facing workflow this package enables::

    PUT /tenants/acme/instances/photos-2024   {"instance": {...}}   # once
    POST /solve   {"by_ref": {"tenant": "acme", "instance_id": "photos-2024"}}
    POST /solve   {"by_ref": ...}            # warm: served from shared memory

Three cooperating pieces, each usable on its own:

* :class:`~repro.tenants.store.TenantStore` — durable, versioned,
  CRC-checked instance blobs under a root directory.
* :class:`~repro.tenants.cache.WarmCache` — a byte-capacity LRU of
  *packed* shared-memory instances, so repeated solves of the same
  stored instance skip both deserialisation and packing.
* :class:`~repro.tenants.quota.QuotaPolicy` — per-tenant storage quotas
  (413) and token-bucket rate limits (429).

:class:`Tenants` glues them together behind the handful of calls the
service, job manager, and CLI actually need — most importantly
:meth:`Tenants.lease_for_solve`, which turns a ``by_ref`` document into
a live :class:`~repro.core.instance.PARInstance` under a cache lease.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.serialize import instance_from_dict
from repro.errors import ValidationError
from repro.tenants.cache import (
    DEFAULT_PREFIX,
    CacheKey,
    WarmCache,
    sweep_leaked_segments,
)
from repro.tenants.quota import QuotaPolicy, TenantQuota, TokenBucket
from repro.tenants.store import StoredInstance, TenantStore, validate_id

__all__ = [
    "Tenants",
    "TenantStore",
    "StoredInstance",
    "WarmCache",
    "CacheKey",
    "QuotaPolicy",
    "TenantQuota",
    "TokenBucket",
    "validate_id",
    "parse_ref",
    "sweep_leaked_segments",
    "DEFAULT_PREFIX",
]


def parse_ref(doc: Any) -> Tuple[str, str, Optional[int]]:
    """Validate a ``by_ref`` document -> ``(tenant, instance_id, version?)``.

    ``version`` defaults to ``None`` meaning "latest stored".  Raises
    :class:`ValidationError` on shape or identifier problems, never
    touches storage.
    """
    if not isinstance(doc, dict):
        raise ValidationError("'by_ref' must be an object")
    unknown = set(doc) - {"tenant", "instance_id", "version"}
    if unknown:
        raise ValidationError(f"unknown 'by_ref' fields: {sorted(unknown)}")
    tenant = validate_id(doc.get("tenant"), "'by_ref' tenant")
    instance_id = validate_id(doc.get("instance_id"), "'by_ref' instance_id")
    version = doc.get("version")
    if version is not None:
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise ValidationError("'by_ref' version must be a positive integer")
    return tenant, instance_id, version


class Tenants:
    """Store + warm cache + quotas behind one service-shaped facade."""

    def __init__(
        self,
        root: str,
        *,
        cache_bytes: float = 256 * 1024 * 1024,
        quota: Optional[TenantQuota] = None,
        name_prefix: str = DEFAULT_PREFIX,
        sweep: bool = True,
    ) -> None:
        self.quotas = QuotaPolicy(quota)
        self.store = TenantStore(root, quota_policy=self.quotas)
        self.cache = WarmCache(cache_bytes, name_prefix=name_prefix, sweep=sweep)

    # ----------------------------------------------------------------- CRUD

    def put_instance(
        self, tenant: str, instance_id: str, instance_doc: Dict[str, Any]
    ) -> StoredInstance:
        """Validate + store an instance document; returns its new metadata.

        The document is fully deserialised first, so malformed uploads
        fail with :class:`ValidationError` before any byte hits disk.
        Cached packings of the previous version are evicted — the
        version bump already makes them unreachable, eviction just
        returns their memory promptly.
        """
        instance_from_dict(instance_doc)
        meta = self.store.put(tenant, instance_id, instance_doc)
        self.cache.invalidate(tenant, instance_id)
        return meta

    def get_instance(self, tenant: str, instance_id: str) -> Dict[str, Any]:
        """The stored envelope: metadata fields + the ``instance`` document."""
        return self.store.get(tenant, instance_id)

    def delete_instance(self, tenant: str, instance_id: str) -> StoredInstance:
        meta = self.store.delete(tenant, instance_id)
        self.cache.invalidate(tenant, instance_id)
        return meta

    def list_instances(self, tenant: str) -> List[StoredInstance]:
        return self.store.list_instances(tenant)

    def stats(self, tenant: str) -> Dict[str, Any]:
        """Store + cache + quota view for one tenant (``GET .../stats``)."""
        cache = self.cache.stats()
        q = self.quotas.quota
        return {
            "tenant": tenant,
            "store": self.store.stats(tenant),
            "cache": {
                "entries": cache["entries"],
                "used_bytes": cache["used_bytes"],
                "capacity_bytes": cache["capacity_bytes"],
                "hits": cache["hits"],
                "misses": cache["misses"],
                "evictions": cache["evictions"],
            },
            "quota": {
                "max_bytes": q.max_bytes,
                "max_instances": q.max_instances,
                "rate_per_second": q.rate_per_second,
                "burst": q.burst,
            },
        }

    # ---------------------------------------------------------------- solve

    def check_rate(self, tenant: str) -> None:
        """Admission control for one tenant-scoped request (may raise 429)."""
        self.quotas.check_rate(tenant)

    @contextmanager
    def lease_for_solve(
        self, by_ref: Any, *, budget: Optional[float] = None
    ) -> Iterator[Tuple[Any, bool]]:
        """Resolve a ``by_ref`` document to ``(PARInstance, was_warm)``.

        Warm path: the packed segment is already resident; the instance
        is zero-copy views over it.  Cold path: load from the store,
        deserialise, pack, admit.  Either way the yielded instance is
        valid for the duration of the ``with`` block — eviction cannot
        unmap it mid-solve.  ``budget`` overrides the stored instance's
        budget without copying arrays.
        """
        tenant, instance_id, version = parse_ref(by_ref)
        if version is None:
            version = self.store.meta(tenant, instance_id).version
        key: CacheKey = (tenant, instance_id, version)

        def _load():
            envelope = self.store.get(tenant, instance_id)
            if envelope.get("version") != version:
                raise ValidationError(
                    f"instance {instance_id!r} of tenant {tenant!r} is at "
                    f"version {envelope.get('version')}, not {version} "
                    "(only the latest version is retrievable)"
                )
            return instance_from_dict(envelope["instance"])

        with self.cache.lease(key, _load, budget=budget) as (instance, hit):
            yield instance, hit

    def close(self) -> None:
        """Release every cached segment (service shutdown)."""
        self.cache.close()
