"""Per-tenant quotas and rate limits for the archive store.

Two independent guards, both enforced *before* any expensive work:

* **Storage quotas** — a hard cap on bytes stored and instances held per
  tenant.  Checked by the store on every ``PUT``; violations raise
  :class:`~repro.errors.QuotaExceeded`, which the service maps to HTTP
  413 with a structured body (``kind`` / ``used`` / ``limit``).
* **Request rate** — a classic token bucket per tenant (``rate`` tokens
  per second, ``burst`` capacity, continuous refill).  Checked on every
  tenant-scoped request; an empty bucket raises
  :class:`~repro.errors.RateLimited` carrying ``retry_after``, mapped to
  HTTP 429.  This layers *admission* control on top of the fair queue's
  *scheduling* fairness: the queue keeps an admitted backfill from
  starving other tenants, the bucket keeps a chatty tenant from being
  admitted faster than their contract allows in the first place.

Buckets are created lazily per tenant and share one lock — the arithmetic
per check is a subtraction and two comparisons, so contention is nil at
the request rates a threaded service sustains.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError, QuotaExceeded, RateLimited
from repro.obs import probes as _obs_probes

__all__ = ["TenantQuota", "TokenBucket", "QuotaPolicy"]


@dataclass(frozen=True)
class TenantQuota:
    """The per-tenant resource contract (``None`` / ``0`` = unlimited)."""

    max_bytes: Optional[float] = None
    max_instances: Optional[int] = None
    rate_per_second: Optional[float] = None
    burst: int = 10

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive (or None)")
        if self.max_instances is not None and self.max_instances < 1:
            raise ConfigurationError("max_instances must be >= 1 (or None)")
        if self.rate_per_second is not None and self.rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive (or None)")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")


class TokenBucket:
    """Continuous-refill token bucket (not thread-safe; owner locks)."""

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def try_acquire(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until one refills."""
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


class QuotaPolicy:
    """Applies one :class:`TenantQuota` contract across all tenants.

    (A future variant could hold per-tenant overrides; the service only
    needs the uniform case today, and the check sites won't change.)
    """

    def __init__(
        self,
        quota: Optional[TenantQuota] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota = quota or TenantQuota()
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    # ------------------------------------------------------------- storage

    def check_storage(
        self, tenant: str, *, new_bytes: float, new_instances: int
    ) -> None:
        """Raise :class:`QuotaExceeded` if the post-write totals violate quota.

        Callers pass the totals *as they would be after the write* — the
        store computes them under its own lock, so check-then-act races
        cannot overshoot.
        """
        q = self.quota
        if q.max_bytes is not None and new_bytes > q.max_bytes:
            self._count_rejection(tenant, "bytes")
            raise QuotaExceeded(tenant, "bytes", new_bytes, q.max_bytes)
        if q.max_instances is not None and new_instances > q.max_instances:
            self._count_rejection(tenant, "instances")
            raise QuotaExceeded(tenant, "instances", new_instances, q.max_instances)

    # ---------------------------------------------------------------- rate

    def check_rate(self, tenant: str) -> None:
        """Take one request token for ``tenant``; raise :class:`RateLimited`."""
        q = self.quota
        if q.rate_per_second is None:
            return
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    q.rate_per_second, q.burst, clock=self._clock
                )
            retry_after = bucket.try_acquire()
        if retry_after is not None:
            self._count_rejection(tenant, "rate")
            raise RateLimited(tenant, retry_after)

    @staticmethod
    def _count_rejection(tenant: str, kind: str) -> None:
        obs = _obs_probes.active()
        if obs is not None:
            obs.tenants_quota_rejections.labels(tenant=tenant, kind=kind).inc()
