"""Background re-curation sweep: coalesce upload bursts, bound the regret.

Uploads with ``resolve="none"`` land their delta durably but leave the
stored solution stale (the manager's pending counters record how stale).
The :class:`RecurationScheduler` turns those into curation work on a
background thread:

* **coalescing** — a burst of deltas triggers *one* warm re-solve once
  the burst goes quiet for ``debounce_seconds`` (or immediately at
  ``max_pending_deltas``), instead of one re-solve per upload;
* **regret ceiling** — warm re-solves accumulate their certified regret
  bounds; when the running total crosses ``regret_threshold`` (or a
  single sweep finds ``max_pending_photos`` un-curated photos) the
  scheduler escalates to a **full** two-phase re-solve, resetting the
  accumulator;
* **jobs integration** — with a :class:`~repro.jobs.manager.JobManager`
  attached, full re-solves are submitted as ordinary ``by_ref`` solve
  jobs (fair-queued, retried, journaled like any other job) and their
  selections land through the manager's version-guarded
  ``commit_solution`` — a concurrent ingest simply wins and the sweep
  re-evaluates.  Without a job manager the full solve runs inline on the
  sweep thread.

The ``live.sweep`` fault site fires at the top of every sweep; a kill
there is indistinguishable from the host dying between sweeps, and the
store's one-write-per-commit design means no sweep can tear an instance.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Set, Tuple

from repro import faults
from repro.errors import ReproError
from repro.jobs.spec import JobSpec, JobState, new_job_id
from repro.live.manager import LiveManager
from repro.obs import probes

__all__ = ["RecurationScheduler"]


class RecurationScheduler:
    """Debounced per-tenant re-curation riding the jobs subsystem."""

    def __init__(
        self,
        manager: LiveManager,
        *,
        jobs=None,
        interval: float = 0.25,
        debounce_seconds: float = 1.0,
        max_pending_deltas: int = 16,
        max_pending_photos: int = 512,
        regret_threshold: float = 0.25,
    ) -> None:
        if interval <= 0:
            raise ValueError("sweep interval must be positive")
        self._manager = manager
        self._jobs = jobs
        self.interval = float(interval)
        self.debounce_seconds = float(debounce_seconds)
        self.max_pending_deltas = int(max_pending_deltas)
        self.max_pending_photos = int(max_pending_photos)
        self.regret_threshold = float(regret_threshold)
        self._tracked: Set[Tuple[str, str]] = set()
        self._inflight: Dict[Tuple[str, str], Tuple[str, int]] = {}
        self._mu = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.sweeps = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="live-recuration", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    def track(self, tenant: str, instance_id: str) -> None:
        """Register an instance for sweeping (ingestion calls this)."""
        with self._mu:
            self._tracked.add((tenant, instance_id))

    # ---------------------------------------------------------------- sweep

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sweep_once()
            except faults.ProcessKilled:
                raise
            except Exception:
                # The sweep is best-effort: a failing instance must not
                # stall curation for every other tenant.  The next tick
                # retries; errors surface through the job journal and
                # metrics, not a dead thread.
                continue

    def sweep_once(self) -> Dict[str, Any]:
        """One pass over every tracked instance; returns action counts."""
        faults.check("live.sweep")
        self.sweeps += 1
        actions = {"warm": 0, "full": 0, "committed": 0, "skipped": 0}
        with self._mu:
            keys = set(self._tracked) | set(self._inflight)
        keys |= set(self._manager.resident_keys())
        now = time.time()
        for key in sorted(keys):
            try:
                self._sweep_key(key, now, actions)
            except faults.ProcessKilled:
                raise
            except ReproError:
                actions["skipped"] += 1
        obs = probes.active()
        if obs is not None:
            obs.live_sweeps.inc()
            for kind in ("warm", "full"):
                if actions[kind]:
                    obs.live_recurations.labels(trigger=kind).inc(
                        actions[kind]
                    )
        return actions

    def _sweep_key(
        self, key: Tuple[str, str], now: float, actions: Dict[str, int]
    ) -> None:
        tenant, instance_id = key
        inflight = self._inflight.get(key)
        if inflight is not None:
            if self._poll_job(key, inflight):
                actions["committed"] += 1
            return
        status = self._manager.status(tenant, instance_id)
        needs_full = (
            status.accumulated_regret >= self.regret_threshold
            or status.pending_photos >= self.max_pending_photos
        )
        if needs_full:
            self._trigger_full(key, status.version)
            actions["full"] += 1
            return
        if status.pending_deltas <= 0:
            return
        quiet = (
            status.last_ingest_at is None
            or now - status.last_ingest_at >= self.debounce_seconds
        )
        if quiet or status.pending_deltas >= self.max_pending_deltas:
            # Coalesce the whole burst into one warm re-solve.
            self._manager.recurate(tenant, instance_id, kind="warm")
            actions["warm"] += 1

    # ------------------------------------------------------------ full path

    def _trigger_full(self, key: Tuple[str, str], version: int) -> None:
        tenant, instance_id = key
        if self._jobs is None:
            self._manager.recurate(tenant, instance_id, kind="full")
            return
        job_id = self._jobs.submit(
            JobSpec(
                job_id=new_job_id(),
                by_ref={"tenant": tenant, "instance_id": instance_id},
                tenant=tenant,
                algorithm="phocus",
            )
        )
        with self._mu:
            self._inflight[key] = (job_id, version)

    def _poll_job(
        self, key: Tuple[str, str], inflight: Tuple[str, int]
    ) -> bool:
        """Advance one in-flight full-solve job; True iff it committed."""
        tenant, instance_id = key
        job_id, version = inflight
        doc = self._jobs.status(job_id)
        if doc is None:
            with self._mu:
                self._inflight.pop(key, None)
            return False
        state = JobState(doc["state"])
        if not state.terminal:
            return False
        with self._mu:
            self._inflight.pop(key, None)
        if state is not JobState.SUCCEEDED:
            return False
        result = doc.get("result") or {}
        selection = result.get("selection")
        if selection is None:
            return False
        committed = self._manager.commit_solution(
            tenant,
            instance_id,
            selection,
            expect_version=version,
            mode=str(result.get("algorithm", "phocus")),
            seconds=float(result.get("elapsed_seconds", 0.0)),
        )
        return committed is not None
