"""Live curation manager: resident archives over the tenant store.

One :class:`LiveManager` fronts a :class:`~repro.tenants.Tenants` facade
and keeps a bounded set of *resident* :class:`LiveArchive` objects keyed
by ``(tenant, instance_id)`` and pinned to the store version they were
loaded from.  The hot path — ``ingest`` — then never re-parses the JSON
document: the resident archive absorbs the delta in memory, the grown
document is written through the store's atomic versioned ``put``, and
only after that single durable commit does the resident slot (and the
stored solution) advance.

Crash atomicity falls out of the one-write design: the **only** durable
mutation an ingestion performs is one ``TenantStore.put`` (itself
old-or-new atomic under the ``tenantstore.*`` fault sites).  The
``live.append`` and ``live.resolve`` fault sites fire *before* that
write, so a kill anywhere in the pipeline leaves the store at the old
version with the old solution — never a torn instance.  Chaos tests
assert exactly this.

Every commit invalidates the tenant warm cache for the instance, so
``by_ref`` solves and jobs immediately see the new version.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import faults
from repro.errors import ValidationError
from repro.live.archive import IngestReport, LiveArchive
from repro.live.resolve import (
    LiveSolveResult,
    cold_resolve,
    replay_solution,
    solve_result_from_dict,
    warm_resolve,
)
from repro.obs import probes
from repro.obs import trace as _trace
from repro.tenants import Tenants

__all__ = ["LiveManager", "LiveStatus"]

#: Resident archives kept in memory (LRU beyond this).
DEFAULT_MAX_RESIDENT = 8


@dataclass
class LiveStatus:
    """Scheduler-relevant view of one live instance."""

    tenant: str
    instance_id: str
    version: int
    n_photos: int
    nnz: int
    recurated_at: Optional[float]
    regret_bound: Optional[float]
    accumulated_regret: float
    pending_deltas: int
    pending_photos: int
    last_ingest_at: Optional[float]
    solution: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "instance_id": self.instance_id,
            "version": self.version,
            "n_photos": self.n_photos,
            "nnz": self.nnz,
            "recurated_at": self.recurated_at,
            "regret_bound": self.regret_bound,
            "accumulated_regret": self.accumulated_regret,
            "pending_deltas": self.pending_deltas,
            "pending_photos": self.pending_photos,
            "last_ingest_at": self.last_ingest_at,
        }


class _Entry:
    """One resident live instance: archive + curation bookkeeping."""

    __slots__ = (
        "archive",
        "version",
        "solution",
        "recurated_at",
        "pending_deltas",
        "pending_photos",
        "accumulated_regret",
        "last_ingest_at",
    )

    def __init__(self, archive: LiveArchive, version: int, meta: Dict[str, Any]):
        self.archive = archive
        self.version = version
        self.solution = solve_result_from_dict(meta.get("solution"))
        self.recurated_at = meta.get("recurated_at")
        self.pending_deltas = int(meta.get("pending_deltas", 0))
        self.pending_photos = int(meta.get("pending_photos", 0))
        self.accumulated_regret = float(meta.get("accumulated_regret", 0.0))
        self.last_ingest_at = meta.get("last_ingest_at")

    def meta_dict(self) -> Dict[str, Any]:
        return {
            "solution": self.solution.to_dict() if self.solution else None,
            "recurated_at": self.recurated_at,
            "pending_deltas": self.pending_deltas,
            "pending_photos": self.pending_photos,
            "accumulated_regret": self.accumulated_regret,
            "last_ingest_at": self.last_ingest_at,
        }


class LiveManager:
    """Delta ingestion + re-curation over the multi-tenant archive store."""

    def __init__(
        self,
        tenants: Tenants,
        *,
        max_resident: int = DEFAULT_MAX_RESIDENT,
    ) -> None:
        self._tenants = tenants
        self._max_resident = max(1, int(max_resident))
        self._resident: "OrderedDict[Tuple[str, str], _Entry]" = OrderedDict()
        self._mu = threading.Lock()
        self._locks: Dict[Tuple[str, str], threading.Lock] = {}

    # ------------------------------------------------------------- plumbing

    def _key_lock(self, key: Tuple[str, str]) -> threading.Lock:
        with self._mu:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = threading.Lock()
            return lock

    def _load_entry(self, tenant: str, instance_id: str) -> _Entry:
        """The resident entry, reloaded if the store moved past it."""
        key = (tenant, instance_id)
        version = self._tenants.store.meta(tenant, instance_id).version
        with self._mu:
            entry = self._resident.get(key)
            if entry is not None and entry.version == version:
                self._resident.move_to_end(key)
                return entry
        envelope = self._tenants.store.get(tenant, instance_id)
        doc = envelope["instance"]
        if "live" not in doc:
            raise ValidationError(
                f"instance {instance_id!r} of tenant {tenant!r} is not live "
                "(create it through the live API to ingest deltas)"
            )
        archive = LiveArchive.from_doc(doc)
        entry = _Entry(
            archive, int(envelope["version"]), doc["live"].get("curation", {})
        )
        self._admit(key, entry)
        return entry

    def _admit(self, key: Tuple[str, str], entry: _Entry) -> None:
        with self._mu:
            self._resident[key] = entry
            self._resident.move_to_end(key)
            while len(self._resident) > self._max_resident:
                self._resident.popitem(last=False)

    def _commit(
        self, tenant: str, instance_id: str, entry: _Entry
    ) -> int:
        """One atomic store write; resident state advances only on success."""
        doc = entry.archive.to_doc()
        doc["live"]["curation"] = entry.meta_dict()
        meta = self._tenants.store.put(tenant, instance_id, doc)
        self._tenants.cache.invalidate(tenant, instance_id)
        entry.version = meta.version
        self._admit((tenant, instance_id), entry)
        return meta.version

    # ------------------------------------------------------------ lifecycle

    def create(
        self,
        tenant: str,
        instance_id: str,
        costs: np.ndarray,
        embeddings: np.ndarray,
        budget: float,
        *,
        tau: float,
        seed: int = 0,
        n_bits="auto",
        target_recall: float = 0.95,
        retained=(),
        solve: bool = True,
    ) -> Dict[str, Any]:
        """Build a live archive, optionally solve it cold, and store it."""
        key = (tenant, instance_id)
        with self._key_lock(key):
            archive, report = LiveArchive.create(
                costs,
                embeddings,
                budget,
                tau=tau,
                seed=seed,
                n_bits=n_bits,
                target_recall=target_recall,
                retained=retained,
            )
            entry = _Entry(archive, 0, {})
            if solve:
                entry.solution = cold_resolve(archive.instance)
                entry.recurated_at = time.time()
                self._observe_resolve(tenant, entry.solution)
            version = self._commit(tenant, instance_id, entry)
        return {
            "tenant": tenant,
            "instance_id": instance_id,
            "version": version,
            "build": report.to_dict(),
            "solution": entry.solution.to_dict() if entry.solution else None,
            "recurated_at": entry.recurated_at,
            "regret_bound": (
                entry.solution.regret_bound if entry.solution else None
            ),
        }

    # ------------------------------------------------------------ ingestion

    def ingest(
        self,
        tenant: str,
        instance_id: str,
        costs: np.ndarray,
        embeddings: np.ndarray,
        *,
        resolve: str = "warm",
    ) -> Dict[str, Any]:
        """Absorb a photo delta as one new store version.

        ``resolve="warm"`` (the default) re-curates inline with the
        warm-started CELF pass; ``resolve="none"`` defers curation to the
        sweep (the solution keeps serving, marked stale via the pending
        counters).  Either way the delta itself is durable — and the
        whole operation is one atomic version bump.
        """
        if resolve not in ("warm", "none"):
            raise ValidationError(
                f"unknown resolve policy {resolve!r}; expected warm or none"
            )
        obs = probes.active()
        key = (tenant, instance_id)
        with self._key_lock(key):
            faults.check("live.append")
            entry = self._load_entry(tenant, instance_id)
            with _trace.span("live.append"):
                grown, report = entry.archive.ingest(costs, embeddings)
            new_entry = _Entry(grown, entry.version, entry.meta_dict())
            new_entry.last_ingest_at = time.time()
            if resolve == "warm":
                faults.check("live.resolve")
                previous = (
                    entry.solution.selection if entry.solution else []
                )
                with _trace.span("live.resolve"):
                    solved = warm_resolve(grown.instance, previous)
                new_entry.solution = solved
                new_entry.recurated_at = time.time()
                new_entry.pending_deltas = 0
                new_entry.pending_photos = 0
                new_entry.accumulated_regret += solved.regret_bound
                self._observe_resolve(tenant, solved)
            else:
                new_entry.pending_deltas += 1
                new_entry.pending_photos += report.n_added
            version = self._commit(tenant, instance_id, new_entry)
        if obs is not None:
            obs.live_ingests.labels(tenant=tenant).inc()
            obs.live_photos.labels(tenant=tenant).inc(report.n_added)
            obs.live_pending.labels(tenant=tenant).set(
                new_entry.pending_deltas
            )
        return {
            "tenant": tenant,
            "instance_id": instance_id,
            "version": version,
            "delta": report.to_dict(),
            "resolve": resolve,
            "solution": (
                new_entry.solution.to_dict() if new_entry.solution else None
            ),
            "recurated_at": new_entry.recurated_at,
            "regret_bound": (
                new_entry.solution.regret_bound
                if new_entry.solution
                else None
            ),
            "pending_deltas": new_entry.pending_deltas,
        }

    # ----------------------------------------------------------- re-solving

    def recurate(
        self, tenant: str, instance_id: str, *, kind: str = "warm"
    ) -> Optional[Dict[str, Any]]:
        """Re-solve the stored instance (sweep/coalesce entry point).

        ``kind="warm"`` seeds from the stored solution (coalescing any
        deferred deltas into one pass); ``kind="full"`` runs the cold
        two-phase solver and resets the accumulated regret.  Commits a
        new version only if the store did not move underneath the solve
        (a concurrent ingest wins; the sweep retries next tick).
        """
        if kind not in ("warm", "full"):
            raise ValidationError(f"unknown recuration kind {kind!r}")
        key = (tenant, instance_id)
        with self._key_lock(key):
            faults.check("live.resolve")
            entry = self._load_entry(tenant, instance_id)
            base_version = entry.version
            with _trace.span(f"live.recurate.{kind}"):
                if kind == "full":
                    solved = cold_resolve(entry.archive.instance)
                else:
                    previous = (
                        entry.solution.selection if entry.solution else []
                    )
                    solved = warm_resolve(entry.archive.instance, previous)
            current = self._tenants.store.meta(tenant, instance_id).version
            if current != base_version:
                return None
            entry.solution = solved
            entry.recurated_at = time.time()
            entry.pending_deltas = 0
            entry.pending_photos = 0
            if kind == "full":
                entry.accumulated_regret = 0.0
            else:
                entry.accumulated_regret += solved.regret_bound
            version = self._commit(tenant, instance_id, entry)
        self._observe_resolve(tenant, solved)
        obs = probes.active()
        if obs is not None:
            obs.live_pending.labels(tenant=tenant).set(0)
        return {
            "tenant": tenant,
            "instance_id": instance_id,
            "version": version,
            "solution": solved.to_dict(),
            "recurated_at": entry.recurated_at,
            "regret_bound": solved.regret_bound,
        }

    def commit_solution(
        self,
        tenant: str,
        instance_id: str,
        selection,
        *,
        expect_version: int,
        mode: str = "job",
        seconds: float = 0.0,
    ) -> Optional[int]:
        """Version-guarded commit of an externally computed full re-solve.

        The scheduler uses this to land a solve that ran as a background
        job: if any ingest bumped the version since the job was
        submitted, the stale selection is discarded (returns ``None``)
        and the sweep re-evaluates.  The value and regret certificate are
        recomputed locally by replaying the selection, so the stored
        solution never trusts wire-format floats.
        """
        key = (tenant, instance_id)
        with self._key_lock(key):
            entry = self._load_entry(tenant, instance_id)
            if entry.version != expect_version:
                return None
            solved = replay_solution(
                entry.archive.instance, selection, mode=mode, seconds=seconds
            )
            entry.solution = solved
            entry.recurated_at = time.time()
            entry.pending_deltas = 0
            entry.pending_photos = 0
            entry.accumulated_regret = 0.0
            version = self._commit(tenant, instance_id, entry)
        self._observe_resolve(tenant, solved)
        return version

    # -------------------------------------------------------------- queries

    def status(self, tenant: str, instance_id: str) -> LiveStatus:
        entry = self._load_entry(tenant, instance_id)
        archive = entry.archive
        return LiveStatus(
            tenant=tenant,
            instance_id=instance_id,
            version=entry.version,
            n_photos=archive.n,
            nnz=archive.instance.subsets[0].similarity.nnz(),
            recurated_at=entry.recurated_at,
            regret_bound=(
                entry.solution.regret_bound if entry.solution else None
            ),
            accumulated_regret=entry.accumulated_regret,
            pending_deltas=entry.pending_deltas,
            pending_photos=entry.pending_photos,
            last_ingest_at=entry.last_ingest_at,
            solution=(
                entry.solution.to_dict() if entry.solution else None
            ),
        )

    def resident_keys(self):
        """Keys currently resident (the sweep's scan set)."""
        with self._mu:
            return list(self._resident.keys())

    # ------------------------------------------------------------- metrics

    def _observe_resolve(self, tenant: str, solved: LiveSolveResult) -> None:
        obs = probes.active()
        if obs is None:
            return
        obs.live_resolves.labels(kind=solved.kind).inc()
        obs.live_resolve_seconds.labels(kind=solved.kind).observe(
            solved.seconds
        )
        obs.live_regret_bound.labels(tenant=tenant).set(solved.regret_bound)
