"""Online incremental curation: the archive that never stops changing.

``repro.live`` promotes the incremental/streaming extensions from
ablation toys to the serving path.  Three layers:

* :mod:`repro.live.archive` — :class:`LiveArchive`: a stored sparse
  instance plus just enough SimHash state to bucket *new* photos against
  it; ``ingest`` grows the CSR via
  :meth:`~repro.core.instance.SparseSimilarity.append_rows` and is
  bit-identical to a from-scratch fused build.
* :mod:`repro.live.resolve` — :func:`warm_resolve`: the checkpoint
  restart vector generalised to a changed instance, with a certified
  ``regret_bound`` from the online bound.
* :mod:`repro.live.manager` / :mod:`repro.live.scheduler` —
  :class:`LiveManager` keeps resident archives over the tenant store
  (one atomic versioned write per delta);
  :class:`RecurationScheduler` coalesces upload bursts and escalates to
  full re-solves, riding :mod:`repro.jobs` when available.

See ``docs/live_curation.md`` for the API, knobs, and regret semantics.
"""

from repro.live.archive import IngestReport, LiveArchive
from repro.live.manager import LiveManager, LiveStatus
from repro.live.resolve import (
    LiveSolveResult,
    cold_resolve,
    replay_solution,
    warm_resolve,
)
from repro.live.scheduler import RecurationScheduler

__all__ = [
    "IngestReport",
    "LiveArchive",
    "LiveManager",
    "LiveStatus",
    "LiveSolveResult",
    "RecurationScheduler",
    "cold_resolve",
    "replay_solution",
    "warm_resolve",
]
