"""Warm-started re-solve: continue the greedy from the previous solution.

The checkpoint machinery of :mod:`repro.core.greedy` resumes a solve on
the *same* instance by replaying the recorded add order through a fresh
:class:`~repro.core.objective.CoverageState`.  :func:`warm_resolve`
generalises that restart vector to a *changed* instance:

1. **validate** the surviving picks — drop ids outside the grown/shrunk
   photo range, deduplicate, and (when the budget shrank underneath the
   solution) fall back to :func:`repro.extensions.incremental`'s reverse
   greedy to evict back inside the budget;
2. **replay** the surviving picks in their original order (bit-identical
   float accumulation, exactly like a checkpoint resume);
3. **re-enter the CELF heap** only where the delta invalidated gains: the
   seeding pass of :func:`~repro.core.greedy.lazy_greedy` skips photos
   that are already selected or unaffordable, and a *completed* greedy
   pass leaves every non-selected photo unaffordable — so after a pure
   append the heap re-admits (and evaluates) essentially only the new
   photos, never the whole archive.

Why the result is trustworthy: :func:`repro.core.bounds.online_bound`
certifies an upper bound on the PAR **optimum** for the current
instance, so ``regret_bound = 1 − value / bound`` bounds the relative
loss against *any* solution — in particular against a cold
``main_algorithm`` re-solve.  Tests assert exactly that inequality, and
that an **empty delta reproduces the previous solution bit for bit**
(the heap seeds empty, the replayed value is the stored value).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.core.bounds import online_bound
from repro.core.greedy import CB, lazy_greedy, main_algorithm
from repro.core.instance import PARInstance
from repro.core.objective import CoverageState
from repro.extensions.incremental import shrink_to_budget

__all__ = [
    "LiveSolveResult",
    "warm_resolve",
    "cold_resolve",
    "replay_solution",
    "solve_result_from_dict",
]


@dataclass
class LiveSolveResult:
    """One re-curation outcome, warm or cold.

    ``selection`` is in add order (the replay vector for the *next* warm
    re-solve).  ``regret_bound`` is the certified relative distance to
    the instance optimum: the achieved value is at least
    ``(1 − regret_bound)`` of any feasible solution's value.
    """

    selection: List[int]
    value: float
    cost: float
    mode: str
    kind: str  # "warm" | "cold"
    evaluations: int
    regret_bound: float
    upper_bound: float
    seconds: float
    evicted: List[int]
    added: List[int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "selection": [int(p) for p in self.selection],
            "value": float(self.value),
            "cost": float(self.cost),
            "mode": self.mode,
            "kind": self.kind,
            "evaluations": int(self.evaluations),
            "regret_bound": float(self.regret_bound),
            "upper_bound": float(self.upper_bound),
            "seconds": float(self.seconds),
            "evicted": [int(p) for p in self.evicted],
            "added": [int(p) for p in self.added],
        }


def _certify(
    instance: PARInstance,
    selection: Iterable[int],
    value: float,
    *,
    state: Optional[CoverageState] = None,
):
    bound = online_bound(instance, selection, state=state)
    regret = 0.0 if bound <= 0 else max(0.0, 1.0 - value / bound)
    return bound, regret


def warm_resolve(
    instance: PARInstance,
    previous_selection: Iterable[int],
) -> LiveSolveResult:
    """Seed the CELF pass from a previous solution on a changed instance."""
    t0 = time.perf_counter()
    seen = set()
    survivors: List[int] = []
    for p in previous_selection:
        p = int(p)
        if 0 <= p < instance.n and p not in seen:
            seen.add(p)
            survivors.append(p)
    previous = set(survivors)
    missing_retained = [p for p in sorted(instance.retained) if p not in seen]
    if missing_retained:
        survivors = missing_retained + survivors
        seen.update(missing_retained)
    if instance.cost_of(seen | set(instance.retained)) > instance.budget * (
        1 + 1e-12
    ):
        # The budget shrank under the solution: reverse-greedy eviction
        # (the incremental extension's shrink pass) restores feasibility,
        # keeping the original pick order among the survivors.
        kept = set(shrink_to_budget(instance, survivors))
        survivors = [p for p in survivors if p in kept] + sorted(
            kept - set(survivors)
        )
    state = CoverageState(instance, survivors)
    run = lazy_greedy(instance, CB, state=state)
    # The replay vector for the next warm re-solve must be the *add*
    # order; with a pre-seeded state the run's own selection list starts
    # from an unordered set listing, so take the state's recorded order.
    selection = state.order
    bound, regret = _certify(instance, selection, run.value, state=state)
    final = set(selection)
    return LiveSolveResult(
        selection=selection,
        value=run.value,
        cost=run.cost,
        mode=run.mode,
        kind="warm",
        evaluations=run.evaluations,
        regret_bound=regret,
        upper_bound=bound,
        seconds=time.perf_counter() - t0,
        evicted=sorted(previous - final),
        added=sorted(final - previous),
    )


def cold_resolve(instance: PARInstance) -> LiveSolveResult:
    """Full two-phase re-solve; value replayed through the stored order.

    The value is recomputed by replaying the winning selection through a
    fresh :class:`CoverageState` so the stored ``(selection, value)`` pair
    is exactly what a later :func:`warm_resolve` replay reproduces —
    keeping the empty-delta path bit-identical even when the retention
    set's iteration order differs between runs.
    """
    t0 = time.perf_counter()
    run = main_algorithm(instance)
    replayed = CoverageState(instance, run.selection)
    bound, regret = _certify(
        instance, run.selection, replayed.value, state=replayed
    )
    return LiveSolveResult(
        selection=list(run.selection),
        value=replayed.value,
        cost=run.cost,
        mode=run.mode,
        kind="cold",
        evaluations=run.evaluations,
        regret_bound=regret,
        upper_bound=bound,
        seconds=time.perf_counter() - t0,
        evicted=[],
        added=list(run.selection),
    )


def replay_solution(
    instance: PARInstance,
    selection: Iterable[int],
    *,
    mode: str = "job",
    seconds: float = 0.0,
) -> LiveSolveResult:
    """Adopt an externally computed selection as a full-solve result.

    Ids outside the instance are dropped, duplicates collapsed, and the
    value + regret certificate recomputed locally by replaying the
    selection through a fresh :class:`CoverageState` — the caller's
    floats are never trusted.
    """
    seen = set()
    order: List[int] = []
    for p in selection:
        p = int(p)
        if 0 <= p < instance.n and p not in seen:
            seen.add(p)
            order.append(p)
    state = CoverageState(instance, order)
    cost = instance.cost_of(seen)
    bound, regret = _certify(instance, order, state.value, state=state)
    return LiveSolveResult(
        selection=order,
        value=state.value,
        cost=cost,
        mode=mode,
        kind="cold",
        evaluations=0,
        regret_bound=regret,
        upper_bound=bound,
        seconds=seconds,
        evicted=[],
        added=order,
    )


def solve_result_from_dict(doc: Optional[Dict[str, Any]]) -> Optional[LiveSolveResult]:
    """Rebuild a stored solution block (``None`` passes through)."""
    if doc is None:
        return None
    return LiveSolveResult(
        selection=[int(p) for p in doc["selection"]],
        value=float(doc["value"]),
        cost=float(doc["cost"]),
        mode=str(doc["mode"]),
        kind=str(doc["kind"]),
        evaluations=int(doc["evaluations"]),
        regret_bound=float(doc["regret_bound"]),
        upper_bound=float(doc["upper_bound"]),
        seconds=float(doc["seconds"]),
        evicted=[int(p) for p in doc.get("evicted", [])],
        added=[int(p) for p in doc.get("added", [])],
    )
