"""Live archive: a stored PAR instance that absorbs photo deltas in place.

A :class:`LiveArchive` is the in-memory half of online curation — one
sparse archive-wide instance plus exactly the SimHash state needed to
bucket *new* photos against it:

* the seeded hyperplanes (re-derived from ``(seed, n_bits, dim)``, never
  stored);
* one ``uint64`` bucket key per photo per band (``O(n · bands)`` ints,
  the only per-photo LSH residue kept between uploads).

:meth:`ingest` re-buckets only the ``k`` arriving photos: their band keys
are matched against the stored keys (old↔new candidates, a sorted search
per band) and against each other (new↔new, the builder's own
within-bucket emitter), verified with the shared exact-cosine kernel, and
appended to the CSR via :meth:`SparseSimilarity.append_rows` — the dense
SIM is never rebuilt and the old CSR region is never re-sorted.  The
grown instance is **bit-identical** to a from-scratch
:func:`repro.scale.build_streamed_instance` over the union of photos at
the same ``(seed, n_bits)``: identical planes give identical bucket keys,
the union of (old-old, old-new, new-new) within-bucket pairs is exactly
the fresh build's candidate set, and both paths verify through
:func:`repro.sparsify.simhash.verify_candidate_pairs` (per-pair values
independent of chunking) into the same canonical CSR layout.

Relevance stays uniform under growth by storing the *raw* (unnormalised)
per-photo relevance and renormalising after each delta — ``n`` ones
become ``1/n`` exactly, matching the fresh build's default.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.instance import (
    PARInstance,
    Photo,
    PredefinedSubset,
    SparseSimilarity,
)
from repro.core.serialize import instance_from_dict, instance_to_dict
from repro.errors import ConfigurationError, ValidationError
from repro.scale.builder import (
    DEFAULT_SIGNATURE_CHUNK,
    ScaleBuildReport,
    _emit_band_pairs,
    _sorted_dedup,
    _streamed_band_keys,
    build_streamed_instance,
)
from repro.sparsify.simhash import (
    DEFAULT_VERIFY_CHUNK,
    SimHasher,
    recommended_bits,
    tune_bands,
    unit_normalize,
    verify_candidate_pairs,
)

__all__ = ["IngestReport", "LiveArchive", "LIVE_FORMAT"]

LIVE_FORMAT = 1


@dataclass
class IngestReport:
    """Diagnostics of one delta ingestion."""

    n_before: int
    n_added: int
    candidate_pairs: int
    kept_pairs: int
    nnz: int
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_before": self.n_before,
            "n_added": self.n_added,
            "candidate_pairs": self.candidate_pairs,
            "kept_pairs": self.kept_pairs,
            "nnz": self.nnz,
            "seconds": self.seconds,
        }


class LiveArchive:
    """A single-subset sparse instance plus its incremental LSH state."""

    __slots__ = (
        "instance",
        "tau",
        "seed",
        "n_bits",
        "bands",
        "rows",
        "target_recall",
        "subset_id",
        "weight",
        "raw_relevance",
        "band_keys",
        "signature_chunk",
        "chunk_pairs",
        "_planes",
        "_sorted_keys",
        "_key_order",
    )

    def __init__(
        self,
        instance: PARInstance,
        *,
        tau: float,
        seed: int,
        n_bits: int,
        bands: int,
        rows: int,
        target_recall: float,
        subset_id: str,
        weight: float,
        raw_relevance: np.ndarray,
        band_keys: np.ndarray,
        signature_chunk: int = DEFAULT_SIGNATURE_CHUNK,
        chunk_pairs: int = DEFAULT_VERIFY_CHUNK,
    ) -> None:
        if instance.embeddings is None:
            raise ConfigurationError(
                "a live archive needs embeddings attached to its instance"
            )
        if rows > 64:
            raise ConfigurationError(
                "live archives require band rows <= 64 (single-word bucket "
                "keys are the only banding stable under deltas)"
            )
        if band_keys.shape != (bands, instance.n):
            raise ConfigurationError(
                f"band_keys shape {band_keys.shape} != ({bands}, {instance.n})"
            )
        self.instance = instance
        self.tau = float(tau)
        self.seed = int(seed)
        self.n_bits = int(n_bits)
        self.bands = int(bands)
        self.rows = int(rows)
        self.target_recall = float(target_recall)
        self.subset_id = subset_id
        self.weight = float(weight)
        self.raw_relevance = np.asarray(raw_relevance, dtype=np.float64)
        self.band_keys = np.ascontiguousarray(band_keys, dtype=np.uint64)
        self.signature_chunk = int(signature_chunk)
        self.chunk_pairs = int(chunk_pairs)
        self._planes: Optional[np.ndarray] = None
        self._sorted_keys: Optional[np.ndarray] = None
        self._key_order: Optional[np.ndarray] = None

    # ------------------------------------------------------------ geometry

    @property
    def n(self) -> int:
        return self.instance.n

    @property
    def dim(self) -> int:
        return int(self.instance.embeddings.shape[1])

    def planes(self) -> np.ndarray:
        """The seeded hyperplanes, re-derived on first use.

        ``SimHasher(dim, n_bits, default_rng(seed))`` consumes the rng
        exactly like the fused builder did at creation, so the planes —
        and therefore every bucket key ever computed — are reproducible
        from ``(seed, n_bits, dim)`` alone.
        """
        if self._planes is None:
            hasher = SimHasher(
                self.dim, self.n_bits, np.random.default_rng(self.seed)
            )
            self._planes = hasher.planes
        return self._planes

    def _keys_for(self, embeddings: np.ndarray) -> np.ndarray:
        """Per-band uint64 bucket keys for a block of embeddings."""
        out = np.empty((self.bands, embeddings.shape[0]), dtype=np.uint64)
        planes = self.planes()
        for b in range(self.bands):
            out[b] = _streamed_band_keys(
                embeddings,
                planes[b * self.rows : (b + 1) * self.rows],
                self.signature_chunk,
            )
        return out

    def _sorted_key_state(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-band sorted bucket keys plus the argsort realising them.

        The old↔new candidate search is a binary search of the stored
        keys, which needs them sorted per band.  Sorting ``O(n log n)``
        keys on every upload would dominate small deltas, so the sorted
        view is built once per archive lifetime and then *merged* forward
        at each ingest (a linear interleave of ``k`` new keys) — the
        steady-state upload path never re-sorts the stored keys.
        """
        if self._key_order is None:
            order = np.argsort(self.band_keys, axis=1, kind="stable")
            self._key_order = order
            self._sorted_keys = np.take_along_axis(
                self.band_keys, order, axis=1
            )
        return self._sorted_keys, self._key_order

    # ------------------------------------------------------------ creation

    @classmethod
    def create(
        cls,
        costs: np.ndarray,
        embeddings: np.ndarray,
        budget: float,
        *,
        tau: float,
        seed: int = 0,
        n_bits: Union[int, str] = "auto",
        target_recall: float = 0.95,
        retained=(),
        subset_id: str = "archive",
        weight: float = 1.0,
        dtype=np.float64,
        chunk_pairs: int = DEFAULT_VERIFY_CHUNK,
        signature_chunk: int = DEFAULT_SIGNATURE_CHUNK,
    ) -> Tuple["LiveArchive", ScaleBuildReport]:
        """Fused streamed build plus the banding state deltas will reuse.

        ``n_bits="auto"`` resolves against the *initial* archive size and
        is then frozen: the planes must stay fixed as the archive grows,
        or old and new bucket keys would stop being comparable.
        """
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ConfigurationError("embeddings must be a 2-D (n, dim) array")
        n = embeddings.shape[0]
        if n_bits == "auto":
            n_bits = recommended_bits(n, tau, target_recall)
        bands, rows = tune_bands(tau, n_bits, target_recall)
        if rows > 64:
            raise ConfigurationError(
                f"tuned band rows {rows} > 64; pass a smaller n_bits"
            )
        instance, report = build_streamed_instance(
            costs,
            embeddings,
            budget,
            tau=tau,
            subset_id=subset_id,
            weight=weight,
            retained=retained,
            n_bits=n_bits,
            target_recall=target_recall,
            rng=int(seed),
            dtype=dtype,
            chunk_pairs=chunk_pairs,
            signature_chunk=signature_chunk,
            keep_embeddings=True,
        )
        hasher = SimHasher(
            embeddings.shape[1], int(n_bits), np.random.default_rng(int(seed))
        )
        band_keys = np.empty((bands, n), dtype=np.uint64)
        for b in range(bands):
            band_keys[b] = _streamed_band_keys(
                instance.embeddings,
                hasher.planes[b * rows : (b + 1) * rows],
                signature_chunk,
            )
        archive = cls(
            instance,
            tau=tau,
            seed=int(seed),
            n_bits=int(n_bits),
            bands=bands,
            rows=rows,
            target_recall=target_recall,
            subset_id=subset_id,
            weight=weight,
            raw_relevance=np.ones(n, dtype=np.float64),
            band_keys=band_keys,
            signature_chunk=signature_chunk,
            chunk_pairs=chunk_pairs,
        )
        archive._planes = hasher.planes
        # Sort the bucket keys now, at build time: uploads then pay only
        # the linear merge, never an O(n log n) sort.
        archive._sorted_key_state()
        return archive, report

    # ----------------------------------------------------------- ingestion

    def ingest(
        self, costs: np.ndarray, embeddings: np.ndarray
    ) -> Tuple["LiveArchive", IngestReport]:
        """Absorb ``k`` new photos; returns ``(grown_archive, report)``.

        Only the new photos are bucketed.  Candidates are the old↔new
        within-bucket matches (one sorted search of the stored keys per
        band) plus the new↔new pairs; both necessarily touch the appended
        id range, which is exactly the contract of
        :meth:`SparseSimilarity.append_rows`.  ``self`` is left untouched
        — the caller swaps archives only after the grown one is durable,
        which is what makes a mid-ingest crash invisible.
        """
        t0 = time.perf_counter()
        inst = self.instance
        n = inst.n
        new_emb = np.asarray(embeddings, dtype=np.float64)
        if new_emb.ndim != 2 or new_emb.shape[1] != self.dim:
            raise ValidationError(
                f"expected embeddings of shape (k, {self.dim}), "
                f"got {new_emb.shape}"
            )
        k = new_emb.shape[0]
        if k < 1:
            raise ValidationError("a delta must contain at least one photo")
        new_costs = np.asarray(costs, dtype=np.float64).ravel()
        if new_costs.size != k:
            raise ValidationError(
                f"costs length {new_costs.size} != embedding rows {k}"
            )
        total = n + k

        new_keys = self._keys_for(new_emb)
        sorted_keys, key_order = self._sorted_key_state()
        pending = []
        for b in range(self.bands):
            new_b = new_keys[b]
            # old↔new: every stored photo sharing a bucket with a new one
            # — a binary search of the cached sorted keys, no re-sort.
            sorted_old = sorted_keys[b]
            order = key_order[b]
            left = np.searchsorted(sorted_old, new_b, side="left")
            right = np.searchsorted(sorted_old, new_b, side="right")
            counts = right - left
            hits = int(counts.sum())
            if hits:
                starts = np.repeat(left, counts)
                within = np.arange(hits, dtype=np.int64) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                old_idx = order[starts + within]
                new_idx = n + np.repeat(np.arange(k, dtype=np.int64), counts)
                pending.append(old_idx * np.int64(total) + new_idx)
            # new↔new: the builder's own within-bucket emitter over just
            # the delta, re-keyed from local to global ids.
            local = _emit_band_pairs(new_b, k, self.chunk_pairs)
            if local.size:
                li = local // np.int64(k) + n
                lj = local % np.int64(k) + n
                pending.append(li * np.int64(total) + lj)
        if pending:
            keys = _sorted_dedup(np.concatenate(pending))
            ii = keys // np.int64(total)
            jj = keys % np.int64(total)
        else:
            ii = np.zeros(0, dtype=np.int64)
            jj = np.zeros(0, dtype=np.int64)
        n_candidates = int(ii.size)

        all_emb = np.concatenate([inst.embeddings, new_emb])
        unit = unit_normalize(all_emb)
        ki, kj, vals = verify_candidate_pairs(
            unit, ii, jj, self.tau, chunk=self.chunk_pairs
        )
        del unit, ii, jj

        subset = inst.subsets[0]
        sim = subset.similarity.append_rows(k, ki, kj, vals, validate=False)
        raw = np.concatenate([self.raw_relevance, np.ones(k)])
        grown_subset = PredefinedSubset(
            self.subset_id,
            self.weight,
            np.arange(total, dtype=np.int64),
            raw / raw.sum(),
            sim,
            normalize=False,
        )
        photos = list(inst.photos) + [
            Photo(photo_id=n + j, cost=float(c))
            for j, c in enumerate(new_costs)
        ]
        grown = PARInstance(
            photos,
            [grown_subset],
            inst.budget,
            retained=inst.retained,
            embeddings=all_emb,
        )
        archive = LiveArchive(
            grown,
            tau=self.tau,
            seed=self.seed,
            n_bits=self.n_bits,
            bands=self.bands,
            rows=self.rows,
            target_recall=self.target_recall,
            subset_id=self.subset_id,
            weight=self.weight,
            raw_relevance=raw,
            band_keys=np.concatenate([self.band_keys, new_keys], axis=1),
            signature_chunk=self.signature_chunk,
            chunk_pairs=self.chunk_pairs,
        )
        archive._planes = self._planes
        # Carry the sorted-key cache forward with a linear merge: the k
        # new keys (sorted among themselves) interleave into each band's
        # already-sorted run.  Any interleave that keeps keys sorted is a
        # valid argsort — equal keys are interchangeable for the bucket
        # search, which recovers hit *sets*, not orders.
        new_order = np.argsort(new_keys, axis=1, kind="stable")
        new_sorted = np.take_along_axis(new_keys, new_order, axis=1)
        merged_sorted = np.empty((self.bands, total), dtype=np.uint64)
        merged_order = np.empty((self.bands, total), dtype=np.int64)
        for b in range(self.bands):
            pos = np.searchsorted(sorted_keys[b], new_sorted[b], side="right")
            merged_sorted[b] = np.insert(sorted_keys[b], pos, new_sorted[b])
            merged_order[b] = np.insert(key_order[b], pos, new_order[b] + n)
        archive._sorted_keys = merged_sorted
        archive._key_order = merged_order
        report = IngestReport(
            n_before=n,
            n_added=k,
            candidate_pairs=n_candidates,
            kept_pairs=int(ki.size),
            nnz=sim.nnz(),
            seconds=time.perf_counter() - t0,
        )
        return archive, report

    # --------------------------------------------------------- persistence

    def to_doc(self) -> Dict[str, Any]:
        """The instance wire document with the live sidecar under ``"live"``.

        :func:`repro.core.serialize.instance_from_dict` reads only the keys
        it knows, so the same stored document keeps serving plain
        ``by_ref`` solves while carrying the banding state deltas need.
        """
        doc = instance_to_dict(self.instance)
        doc["live"] = {
            "format": LIVE_FORMAT,
            "tau": self.tau,
            "seed": self.seed,
            "n_bits": self.n_bits,
            "bands": self.bands,
            "rows": self.rows,
            "target_recall": self.target_recall,
            "subset_id": self.subset_id,
            "weight": self.weight,
            "raw_relevance": self.raw_relevance.tolist(),
            "band_keys": [row.tolist() for row in self.band_keys],
        }
        return doc

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "LiveArchive":
        """Rebuild from a stored document produced by :meth:`to_doc`."""
        live = doc.get("live")
        if not isinstance(live, dict):
            raise ValidationError("document carries no 'live' sidecar")
        if live.get("format") != LIVE_FORMAT:
            raise ValidationError(
                f"unsupported live format {live.get('format')!r}"
            )
        instance = instance_from_dict(doc)
        if instance.embeddings is None:
            raise ValidationError(
                "live document lost its embeddings; cannot ingest deltas"
            )
        try:
            archive = cls(
                instance,
                tau=float(live["tau"]),
                seed=int(live["seed"]),
                n_bits=int(live["n_bits"]),
                bands=int(live["bands"]),
                rows=int(live["rows"]),
                target_recall=float(live["target_recall"]),
                subset_id=str(live["subset_id"]),
                weight=float(live["weight"]),
                raw_relevance=np.asarray(
                    live["raw_relevance"], dtype=np.float64
                ),
                band_keys=np.asarray(live["band_keys"], dtype=np.uint64),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed live sidecar: {exc!r}") from exc
        # Load-time key sort, exactly like `create`: the per-upload path
        # of a freshly loaded archive starts from the merged cache too.
        archive._sorted_key_state()
        return archive
