"""PPM/PGM image export — look at the synthetic photos.

The synthetic substrate renders photos as float arrays; this module
writes them as binary PPM (colour) / PGM (grayscale) files — the simplest
image formats that every viewer and converter understands — with zero
dependencies.  :func:`contact_sheet` tiles a batch into one overview
image, the quickest way to eyeball a generated cluster's redundancy
structure.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import ValidationError

__all__ = ["write_ppm", "read_ppm", "contact_sheet"]


def _to_bytes(image: np.ndarray) -> np.ndarray:
    return (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write an ``(H, W, 3)`` colour image as binary PPM (P6), or an
    ``(H, W)`` grayscale image as binary PGM (P5)."""
    image = np.asarray(image, dtype=np.float64)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if image.ndim == 3 and image.shape[2] == 3:
        magic, payload = b"P6", _to_bytes(image)
        h, w = image.shape[:2]
    elif image.ndim == 2:
        magic, payload = b"P5", _to_bytes(image)
        h, w = image.shape
    else:
        raise ValidationError("expected an (H, W, 3) or (H, W) image")
    with path.open("wb") as handle:
        handle.write(magic + b"\n%d %d\n255\n" % (w, h))
        handle.write(payload.tobytes())
    return path


def read_ppm(path: Union[str, Path]) -> np.ndarray:
    """Read a binary PPM/PGM written by :func:`write_ppm` back to floats."""
    data = Path(path).read_bytes()
    parts = data.split(b"\n", 3)
    if len(parts) < 4 or parts[0] not in (b"P5", b"P6"):
        raise ValidationError(f"{path} is not a binary PPM/PGM file")
    magic, dims, maxval, payload = parts
    w, h = (int(x) for x in dims.split())
    if maxval.strip() != b"255":
        raise ValidationError("only 8-bit PPM/PGM supported")
    flat = np.frombuffer(payload, dtype=np.uint8)
    if magic == b"P6":
        image = flat[: h * w * 3].reshape(h, w, 3)
    else:
        image = flat[: h * w].reshape(h, w)
    return image.astype(np.float64) / 255.0


def contact_sheet(
    images: Sequence[np.ndarray],
    *,
    columns: int = 8,
    padding: int = 2,
    background: float = 1.0,
) -> np.ndarray:
    """Tile equally-sized colour images into one overview image."""
    if not images:
        raise ValidationError("contact_sheet needs at least one image")
    first = np.asarray(images[0])
    if first.ndim != 3 or first.shape[2] != 3:
        raise ValidationError("contact_sheet expects (H, W, 3) images")
    h, w = first.shape[:2]
    for img in images:
        if np.asarray(img).shape != first.shape:
            raise ValidationError("all images must share one shape")
    columns = min(columns, len(images))
    rows = (len(images) + columns - 1) // columns
    sheet = np.full(
        (rows * (h + padding) + padding, columns * (w + padding) + padding, 3),
        background,
        dtype=np.float64,
    )
    for i, img in enumerate(images):
        r, c = divmod(i, columns)
        y = padding + r * (h + padding)
        x = padding + c * (w + padding)
        sheet[y : y + h, x : x + w] = np.asarray(img)
    return sheet
