"""Image quality scoring (the "quality of a photo" model input).

Section 5.1: relevance "is computed based both on the quality of the image
(using ML model for image embedding, e.g., [8]) and the relevance score of
the product".  We implement the classical no-reference quality signals:

* **sharpness** — variance of the Laplacian (blurry shots score low);
* **exposure** — penalises very dark or blown-out frames;
* **contrast** — luminance standard deviation.

:func:`quality_score` combines them into ``[0, 1]``; the dataset
generators multiply it into the relevance scores so that within a concept
cluster the crisp shot beats its blurry near-duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.images.features import to_grayscale

__all__ = ["sharpness", "exposure", "contrast", "quality_score"]


def _laplacian(gray: np.ndarray) -> np.ndarray:
    padded = np.pad(gray, 1, mode="edge")
    return (
        padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
        - 4.0 * gray
    )


def sharpness(image: np.ndarray) -> float:
    """Laplacian-variance sharpness, squashed into [0, 1].

    The raw variance depends on resolution and content scale; the squash
    ``v / (v + k)`` maps "blurry" (tiny variance) near 0 and "crisp" well
    above 0.5 without needing calibration data.
    """
    gray = to_grayscale(image)
    variance = float(_laplacian(gray).var())
    k = 1e-3
    return variance / (variance + k)


def exposure(image: np.ndarray) -> float:
    """Closeness of mean luminance to mid-gray: 1 at 0.5, 0 at pure black/white."""
    gray = to_grayscale(image)
    return float(1.0 - 2.0 * abs(gray.mean() - 0.5))


def contrast(image: np.ndarray) -> float:
    """Luminance spread, squashed into [0, 1] (flat frames score ~0)."""
    gray = to_grayscale(image)
    spread = float(gray.std())
    k = 0.05
    return spread / (spread + k)


def quality_score(
    image: np.ndarray,
    *,
    w_sharpness: float = 0.5,
    w_exposure: float = 0.25,
    w_contrast: float = 0.25,
) -> float:
    """Weighted no-reference quality in [0, 1]."""
    total = w_sharpness + w_exposure + w_contrast
    if total <= 0:
        raise ValueError("quality weights must not all be zero")
    value = (
        w_sharpness * sharpness(image)
        + w_exposure * exposure(image)
        + w_contrast * contrast(image)
    ) / total
    return float(np.clip(value, 0.0, 1.0))
