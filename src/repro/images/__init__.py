"""Synthetic photo substrate: scenes, features, embeddings, EXIF, quality.

This package replaces the paper's proprietary photo inputs (Open Images +
ResNet-50, XYZ product shots + internal ML embeddings) with a fully
synthetic but structurally faithful pipeline — see DESIGN.md §4 for the
substitution rationale.
"""

from repro.images.embedder import PhotoEmbedder
from repro.images.exif import (
    EventProfile,
    ExifRecord,
    geo_bucket,
    synthesize_event_exif,
    time_bucket,
)
from repro.images.features import (
    color_histogram,
    feature_dim,
    feature_vector,
    gradient_orientation_histogram,
    to_grayscale,
)
from repro.images.filesize import detail_level, file_size_bytes
from repro.images.ppm import contact_sheet, read_ppm, write_ppm
from repro.images.quality import contrast, exposure, quality_score, sharpness
from repro.images.synthetic import (
    ConceptPrototype,
    Shape,
    random_prototype,
    render_cluster,
    render_photo,
)

__all__ = [
    "ConceptPrototype",
    "Shape",
    "random_prototype",
    "render_photo",
    "render_cluster",
    "to_grayscale",
    "color_histogram",
    "gradient_orientation_histogram",
    "feature_vector",
    "feature_dim",
    "PhotoEmbedder",
    "ExifRecord",
    "EventProfile",
    "synthesize_event_exif",
    "time_bucket",
    "geo_bucket",
    "sharpness",
    "exposure",
    "contrast",
    "quality_score",
    "detail_level",
    "file_size_bytes",
    "write_ppm",
    "read_ppm",
    "contact_sheet",
]
