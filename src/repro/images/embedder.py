"""Photo embedder: the library's stand-in for ResNet-50 (Section 5.1).

The paper embeds photos with "a commonly used pretrained ResNet-50
network" and computes cosine similarity between the embeddings.  Offline
we replace the network with a *fixed random-projection embedder* over the
classic features of :mod:`repro.images.features`:

1. extract the colour-histogram + HOG descriptor;
2. project it through a frozen Gaussian matrix (a Johnson–Lindenstrauss
   projection, seeded once per embedder — the analogue of frozen network
   weights);
3. L2-normalise.

This keeps the single property every downstream component needs: photos
rendered from the same concept prototype embed close together (high
cosine), unrelated concepts embed far apart — the same geometry a trained
CNN produces over product photos, without a network or training data.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.images.features import feature_dim, feature_vector

__all__ = ["PhotoEmbedder"]


class PhotoEmbedder:
    """Frozen random-projection embedder over classic image features.

    Parameters
    ----------
    out_dim:
        Embedding dimensionality (the paper's ResNet features are 2048-d;
        64 is plenty for the synthetic substrate and much faster).
    bins, cells, orientations:
        Feature-extraction parameters (see :mod:`repro.images.features`).
    seed:
        Seed of the frozen projection — two embedders with the same seed
        and parameters are functionally identical, like two copies of the
        same pretrained checkpoint.
    """

    def __init__(
        self,
        out_dim: int = 64,
        *,
        bins: int = 8,
        cells: Tuple[int, int] = (4, 4),
        orientations: int = 8,
        seed: int = 7,
    ) -> None:
        if out_dim < 2:
            raise ConfigurationError("out_dim must be at least 2")
        self.out_dim = out_dim
        self.bins = bins
        self.cells = cells
        self.orientations = orientations
        self.seed = seed
        in_dim = feature_dim(bins, cells, orientations)
        rng = np.random.default_rng(seed)
        # JL-style projection; rows scaled so projected norms stay O(1).
        self._projection = rng.standard_normal((out_dim, in_dim)) / np.sqrt(out_dim)

    def embed(self, image: np.ndarray) -> np.ndarray:
        """Embed one image into a unit vector of length ``out_dim``."""
        features = feature_vector(
            image, bins=self.bins, cells=self.cells, orientations=self.orientations
        )
        vec = self._projection @ features
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    def embed_batch(self, images: Sequence[np.ndarray]) -> np.ndarray:
        """Embed a sequence of images into an ``(n, out_dim)`` array."""
        if not images:
            return np.zeros((0, self.out_dim))
        return np.stack([self.embed(img) for img in images])
