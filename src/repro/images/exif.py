"""Synthetic EXIF metadata (the personal-photo organisation signals).

Section 1 and Section 5.1 both rely on photo metadata: "Image tagging
software may also automatically organize photos by features such as date,
location and facial recognition" and the similarity pipeline reads "the
EXIF metadata".  This module generates coherent EXIF records for synthetic
shots: photos of the same event share a time window, a location
neighbourhood, and usually a camera body — which lets the automatic
tagging input mode (Section 5.1, mode 3) group photos by date/place just
like real tagging software.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import List, Optional

import numpy as np

__all__ = ["ExifRecord", "EventProfile", "synthesize_event_exif", "time_bucket", "geo_bucket"]

_CAMERAS = (
    "Canon EOS R6",
    "Nikon Z6 II",
    "Sony A7 IV",
    "iPhone 13 Pro",
    "Pixel 6",
    "Fujifilm X-T4",
)


@dataclass(frozen=True)
class ExifRecord:
    """A minimal EXIF block: when, where and with what a photo was taken."""

    timestamp: datetime
    latitude: float
    longitude: float
    camera: str
    focal_length_mm: float
    iso: int

    def as_dict(self) -> dict:
        """JSON-friendly rendering (used by dataset serialisation)."""
        return {
            "timestamp": self.timestamp.isoformat(),
            "latitude": self.latitude,
            "longitude": self.longitude,
            "camera": self.camera,
            "focal_length_mm": self.focal_length_mm,
            "iso": self.iso,
        }


@dataclass(frozen=True)
class EventProfile:
    """The shared context of one shooting event (a trip, a product shoot)."""

    start: datetime
    duration_hours: float
    latitude: float
    longitude: float
    camera: str


def synthesize_event_exif(
    n_photos: int,
    rng: np.random.Generator,
    *,
    base_time: Optional[datetime] = None,
    spread_km: float = 2.0,
) -> List[ExifRecord]:
    """EXIF records for ``n_photos`` shots of a single event.

    Timestamps fall inside one event window, GPS points scatter within
    ``spread_km`` of the event location, and most shots share one camera
    body (with occasional second-shooter frames).
    """
    if base_time is None:
        base_time = datetime(2022, 1, 1, tzinfo=timezone.utc) + timedelta(
            days=float(rng.uniform(0, 365))
        )
    profile = EventProfile(
        start=base_time,
        duration_hours=float(rng.uniform(0.5, 8.0)),
        latitude=float(rng.uniform(-60, 70)),
        longitude=float(rng.uniform(-180, 180)),
        camera=str(rng.choice(_CAMERAS)),
    )
    deg_per_km = 1.0 / 111.0
    records = []
    for _ in range(n_photos):
        offset_h = float(rng.uniform(0, profile.duration_hours))
        camera = profile.camera if rng.random() < 0.85 else str(rng.choice(_CAMERAS))
        records.append(
            ExifRecord(
                timestamp=profile.start + timedelta(hours=offset_h),
                latitude=profile.latitude
                + float(rng.normal(0, spread_km * deg_per_km)),
                longitude=profile.longitude
                + float(rng.normal(0, spread_km * deg_per_km)),
                camera=camera,
                focal_length_mm=float(rng.choice([24, 35, 50, 85, 135])),
                iso=int(rng.choice([100, 200, 400, 800, 1600])),
            )
        )
    return records


def time_bucket(record: ExifRecord) -> str:
    """Day-granularity tag ("2022-06-14") for automatic date grouping."""
    return record.timestamp.strftime("%Y-%m-%d")


def geo_bucket(record: ExifRecord, cell_degrees: float = 0.5) -> str:
    """Coarse location tag ("geo:41.0,2.0") for automatic place grouping."""
    lat = np.floor(record.latitude / cell_degrees) * cell_degrees
    lon = np.floor(record.longitude / cell_degrees) * cell_degrees
    return f"geo:{lat:.1f},{lon:.1f}"
