"""Synthetic photo substrate: numpy-rendered scenes with planted clusters.

The paper's pipelines consume real photos (Open Images, XYZ product shots)
through ResNet-50 embeddings.  Offline we substitute a generative photo
model that preserves exactly what the algorithms depend on: *photos that
form visual clusters*, so that intra-cluster similarity is high,
inter-cluster similarity is low, and near-duplicate shots exist for the
solvers to deduplicate.

A :class:`ConceptPrototype` describes a visual concept ("red bike on grass",
"black shirt on white") as a background gradient plus a few parametrised
shapes.  :func:`render_photo` draws a jittered variant of a prototype —
shapes shift, hues drift, sensor noise and optional blur are applied — so
photos of one concept look alike but not identical.  All randomness flows
through explicit generators, making datasets bit-reproducible.

Images are float arrays in ``[0, 1]`` of shape ``(H, W, 3)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Shape",
    "ConceptPrototype",
    "random_prototype",
    "render_photo",
    "render_cluster",
]

Color = Tuple[float, float, float]


@dataclass
class Shape:
    """A single drawable element of a scene.

    ``kind`` is ``"rect"`` or ``"disc"``; positions and sizes are in
    relative image coordinates (fractions of height/width).
    """

    kind: str
    cx: float
    cy: float
    size: float
    color: Color

    def __post_init__(self) -> None:
        if self.kind not in ("rect", "disc"):
            raise ValidationError(f"unknown shape kind {self.kind!r}")


@dataclass
class ConceptPrototype:
    """The visual prototype all photos of one concept are jittered from."""

    concept_id: str
    background_top: Color
    background_bottom: Color
    shapes: List[Shape] = field(default_factory=list)


def random_prototype(
    concept_id: str,
    rng: np.random.Generator,
    *,
    n_shapes: Tuple[int, int] = (2, 4),
) -> ConceptPrototype:
    """Sample a fresh concept prototype (background + shapes)."""
    bg_top = tuple(rng.uniform(0.1, 0.9, size=3))
    bg_bottom = tuple(np.clip(np.asarray(bg_top) + rng.uniform(-0.3, 0.3, size=3), 0, 1))
    shapes = []
    for _ in range(int(rng.integers(n_shapes[0], n_shapes[1] + 1))):
        shapes.append(
            Shape(
                kind="disc" if rng.random() < 0.5 else "rect",
                cx=float(rng.uniform(0.2, 0.8)),
                cy=float(rng.uniform(0.2, 0.8)),
                size=float(rng.uniform(0.1, 0.3)),
                color=tuple(rng.uniform(0.0, 1.0, size=3)),
            )
        )
    return ConceptPrototype(concept_id, bg_top, bg_bottom, shapes)


def _draw_background(height: int, width: int, proto: ConceptPrototype) -> np.ndarray:
    top = np.asarray(proto.background_top, dtype=np.float64)
    bottom = np.asarray(proto.background_bottom, dtype=np.float64)
    t = np.linspace(0.0, 1.0, height)[:, None, None]
    return (1 - t) * top[None, None, :] + t * bottom[None, None, :] * np.ones((1, width, 1))


def _draw_shape(image: np.ndarray, shape: Shape, jitter: np.ndarray) -> None:
    height, width, _ = image.shape
    cx = np.clip(shape.cx + jitter[0], 0.05, 0.95)
    cy = np.clip(shape.cy + jitter[1], 0.05, 0.95)
    size = np.clip(shape.size * (1.0 + jitter[2]), 0.03, 0.45)
    color = np.clip(np.asarray(shape.color) + jitter[3:6], 0.0, 1.0)
    ys = np.arange(height)[:, None] / height
    xs = np.arange(width)[None, :] / width
    if shape.kind == "disc":
        mask = (ys - cy) ** 2 + (xs - cx) ** 2 <= size**2
    else:
        mask = (np.abs(ys - cy) <= size) & (np.abs(xs - cx) <= size)
    image[mask] = color


def render_photo(
    proto: ConceptPrototype,
    rng: np.random.Generator,
    *,
    height: int = 32,
    width: int = 32,
    jitter_scale: float = 0.08,
    noise_scale: float = 0.02,
    blur: bool = False,
) -> np.ndarray:
    """Render one jittered photo of a concept.

    ``jitter_scale`` controls how far shot-to-shot variants drift from the
    prototype (position/size/colour); ``noise_scale`` adds per-pixel sensor
    noise; ``blur`` applies a cheap box blur simulating a soft-focus shot
    (used by the quality model as the low-quality condition).
    """
    if height < 4 or width < 4:
        raise ValidationError("images must be at least 4x4 pixels")
    image = _draw_background(height, width, proto).copy()
    for shape in proto.shapes:
        jitter = rng.normal(0.0, jitter_scale, size=6)
        _draw_shape(image, shape, jitter)
    image += rng.normal(0.0, noise_scale, size=image.shape)
    if blur:
        # 3x3 box blur via summed shifts — a deliberately soft shot.
        padded = np.pad(image, ((1, 1), (1, 1), (0, 0)), mode="edge")
        acc = np.zeros_like(image)
        for dy in range(3):
            for dx in range(3):
                acc += padded[dy : dy + height, dx : dx + width]
        image = acc / 9.0
    return np.clip(image, 0.0, 1.0)


def render_cluster(
    proto: ConceptPrototype,
    n_photos: int,
    rng: np.random.Generator,
    *,
    height: int = 32,
    width: int = 32,
    blur_fraction: float = 0.15,
) -> List[np.ndarray]:
    """Render a cluster of near-duplicate photos of one concept.

    A ``blur_fraction`` of the shots is rendered soft-focus so every
    cluster contains both keepers and low-quality redundant shots — the
    structure PAR exploits.
    """
    photos = []
    for _ in range(n_photos):
        blur = rng.random() < blur_fraction
        photos.append(render_photo(proto, rng, height=height, width=width, blur=blur))
    return photos
