"""Classic image features: colour histograms and HOG-style descriptors.

The paper's similarity pipeline (via [44]) derives photo distances from
"quantitative and categorical attributes ... including, e.g., reading the
EXIF metadata and generating visual words via the SIFT algorithm [33]".
We implement the standard lightweight equivalents in pure numpy:

* :func:`color_histogram` — per-channel intensity histograms (the global
  colour signature of a shot);
* :func:`gradient_orientation_histogram` — a HOG-like descriptor: image
  gradients binned by orientation over a grid of cells, block-normalised —
  the same family of "visual word" statistics SIFT/HOG produce;
* :func:`feature_vector` — the concatenated, L2-normalised descriptor the
  embedder consumes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "to_grayscale",
    "color_histogram",
    "gradient_orientation_histogram",
    "feature_vector",
    "feature_dim",
]

# Rec. 601 luma coefficients.
_LUMA = np.array([0.299, 0.587, 0.114])


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Luma conversion of an ``(H, W, 3)`` image."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValidationError("expected an (H, W, 3) image")
    return image @ _LUMA


def color_histogram(image: np.ndarray, bins: int = 8) -> np.ndarray:
    """Per-channel intensity histograms, concatenated and L1-normalised."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValidationError("expected an (H, W, 3) image")
    if bins < 2:
        raise ValidationError("need at least 2 histogram bins")
    parts = []
    for c in range(3):
        hist, _ = np.histogram(image[:, :, c], bins=bins, range=(0.0, 1.0))
        parts.append(hist.astype(np.float64))
    vec = np.concatenate(parts)
    total = vec.sum()
    return vec / total if total > 0 else vec


def gradient_orientation_histogram(
    image: np.ndarray,
    *,
    cells: Tuple[int, int] = (4, 4),
    orientations: int = 8,
) -> np.ndarray:
    """HOG-style descriptor: per-cell gradient-orientation histograms.

    Gradients are computed with central differences on the grayscale
    image; each pixel votes its gradient magnitude into an orientation bin
    of its cell.  Cell histograms are concatenated and L2-normalised.
    """
    gray = to_grayscale(image)
    h, w = gray.shape
    cy, cx = cells
    if h < cy or w < cx:
        raise ValidationError("image smaller than the cell grid")
    gy, gx = np.gradient(gray)
    magnitude = np.hypot(gx, gy)
    # Unsigned orientation in [0, pi).
    angle = np.mod(np.arctan2(gy, gx), np.pi)
    bin_idx = np.minimum((angle / np.pi * orientations).astype(int), orientations - 1)

    descriptor = np.zeros((cy, cx, orientations), dtype=np.float64)
    ys = np.minimum((np.arange(h)[:, None] * cy // h), cy - 1) * np.ones((1, w), dtype=int)
    xs = np.ones((h, 1), dtype=int) * np.minimum((np.arange(w)[None, :] * cx // w), cx - 1)
    np.add.at(descriptor, (ys.ravel(), xs.ravel(), bin_idx.ravel()), magnitude.ravel())

    vec = descriptor.ravel()
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


def feature_dim(
    bins: int = 8,
    cells: Tuple[int, int] = (4, 4),
    orientations: int = 8,
) -> int:
    """Length of the vector :func:`feature_vector` produces."""
    return 3 * bins + cells[0] * cells[1] * orientations


def feature_vector(
    image: np.ndarray,
    *,
    bins: int = 8,
    cells: Tuple[int, int] = (4, 4),
    orientations: int = 8,
) -> np.ndarray:
    """Full photo descriptor: colour histogram ⧺ HOG, L2-normalised."""
    vec = np.concatenate(
        [
            color_histogram(image, bins=bins),
            gradient_orientation_histogram(image, cells=cells, orientations=orientations),
        ]
    )
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec
