"""Photo file-size model (the PAR cost function ``C``).

PAR budgets are in bytes, so every synthetic photo needs a believable
storage cost.  Real JPEG sizes scale with pixel count and with content
complexity (noisy/high-frequency content compresses worse).  We model

    size_bytes = pixels × 3 × bits_per_pixel(detail) / 8

where ``detail`` is a cheap gradient-energy proxy for compressibility and
``bits_per_pixel`` interpolates between heavy compression for flat images
and light compression for busy ones.  A resolution multiplier simulates
the original full-resolution asset the thumbnail stands for (our rendered
arrays are small; the catalogue photo they represent is megapixels).
"""

from __future__ import annotations

import numpy as np

from repro.images.features import to_grayscale

__all__ = ["detail_level", "file_size_bytes"]


def detail_level(image: np.ndarray) -> float:
    """Gradient-energy detail proxy in [0, 1] (flat → 0, busy → 1)."""
    gray = to_grayscale(image)
    gy, gx = np.gradient(gray)
    energy = float(np.hypot(gx, gy).mean())
    k = 0.05
    return energy / (energy + k)


def file_size_bytes(
    image: np.ndarray,
    *,
    resolution_multiplier: float = 1800.0,
    min_bpp: float = 0.4,
    max_bpp: float = 2.4,
) -> float:
    """Simulated full-resolution JPEG size of a rendered photo, in bytes.

    With the defaults a 32×32 render stands for a ~1.8-megapixel original
    and sizes land in the 0.1–0.6 MB range for flat product shots up to
    several MB for busy scenes — the same magnitude as the paper's photos
    (Figure 1 uses 0.7–2.1 Mb; Section 5.3 uses ~80 KB landing-page
    images with a 2 MB budget, reachable via the multiplier).
    """
    h, w = image.shape[:2]
    pixels = h * w * resolution_multiplier
    bpp = min_bpp + (max_bpp - min_bpp) * detail_level(image)
    return float(pixels * bpp / 8.0 * 3.0)
