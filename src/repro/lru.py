"""A generic byte-capacity LRU — the one eviction loop in the codebase.

Two very different layers need "hold items under a byte budget, evict
the least interesting one when full": the access-driven cache policies
of :mod:`repro.storage.caching` (the Section 2 related-work experiment)
and the tenant warm cache of :mod:`repro.tenants.cache` (packed
shared-memory instances for hot archives).  Before this module each
would have grown its own subtly different accounting; now both delegate
residency, byte bookkeeping, pinning, and the eviction loop to
:class:`ByteBudgetLRU` and only customise the two genuinely different
decisions:

* *who to evict* — the default is strict recency (the front of the
  ordered dict); a ``victim_of`` hook lets LFU (or any other policy)
  pick among the evictable residents instead;
* *what eviction means* — an ``on_evict`` hook receives each evicted
  ``(key, value)`` so owners of real resources (shared-memory segments)
  can release them; for the plain replay experiment it is a no-op.

The class is deliberately not thread-safe: both call sites wrap it in
their own lock (the replay harness is single-threaded, the warm cache
needs its lock to cover more state than residency anyway).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from repro.errors import ValidationError

__all__ = ["ByteBudgetLRU"]

K = TypeVar("K")
V = TypeVar("V")


class ByteBudgetLRU:
    """Byte-bounded mapping with LRU (or policy-hook) eviction.

    ``capacity_bytes`` must be positive.  Items larger than the whole
    capacity are refused by :meth:`put` (returns ``False``).  ``pinned``
    keys are never evicted — :meth:`put` fails when only pinned items
    stand in the way, mirroring the original cache's behaviour.
    """

    def __init__(
        self,
        capacity_bytes: float,
        *,
        on_evict: Optional[Callable[[K, V], None]] = None,
        victim_of: Optional[Callable[[Iterable[K]], Optional[K]]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValidationError("capacity must be positive")
        self.capacity = float(capacity_bytes)
        self._on_evict = on_evict
        self._victim_of = victim_of
        self._entries: "OrderedDict[K, Tuple[V, float]]" = OrderedDict()
        self._pinned: set = set()
        self._bytes = 0.0
        self.evictions = 0

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> float:
        return self._bytes

    def keys(self) -> List[K]:
        """Resident keys, least recently used first."""
        return list(self._entries)

    def sizes(self) -> Dict[K, float]:
        return {k: size for k, (_, size) in self._entries.items()}

    def get(self, key: K) -> Optional[V]:
        """The value for ``key`` (touching its recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry[0]

    def peek(self, key: K) -> Optional[V]:
        """The value for ``key`` without touching recency."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    # ------------------------------------------------------------ mutation

    def touch(self, key: K) -> bool:
        """Mark ``key`` most recently used; ``False`` if absent."""
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def put(self, key: K, value: V, nbytes: float, *, pin: bool = False) -> bool:
        """Admit (or replace) ``key``; evict as needed.  ``True`` on success.

        Replacing an existing key fires ``on_evict`` for the old value
        first.  Returns ``False`` — with nothing admitted — when the item
        cannot fit even after evicting every unpinned resident.
        """
        nbytes = float(nbytes)
        if nbytes < 0:
            raise ValidationError("item size must be non-negative")
        if key in self._entries:
            # Replacement releases the old value like an eviction would —
            # owners of real resources (shm segments) must see it go.
            old = self.pop(key)
            if self._on_evict is not None:
                self._on_evict(key, old)
        if nbytes > self.capacity:
            return False
        while self._bytes + nbytes > self.capacity * (1 + 1e-12):
            if self._evict_one() is None:
                return False  # only pinned items remain; cannot admit
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        if pin:
            self._pinned.add(key)
        return True

    def pop(self, key: K) -> Optional[V]:
        """Remove ``key`` *without* firing ``on_evict``; returns its value."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return None
        self._pinned.discard(key)
        self._bytes -= entry[1]
        return entry[0]

    def clear(self) -> None:
        """Evict everything (pinned included), firing ``on_evict`` per item."""
        while self._entries:
            key = next(iter(self._entries))
            value = self.pop(key)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)

    # ------------------------------------------------------------ internals

    def _evict_one(self) -> Optional[K]:
        victim = self._pick_victim()
        if victim is None:
            return None
        value = self.pop(victim)
        self.evictions += 1
        if self._on_evict is not None:
            self._on_evict(victim, value)
        return victim

    def _pick_victim(self) -> Optional[K]:
        evictable = (k for k in self._entries if k not in self._pinned)
        if self._victim_of is not None:
            return self._victim_of(evictable)
        return next(evictable, None)
