"""The service-facing ``fidelity`` policy: payload in, report out.

``POST /solve`` (and ``/jobs`` specs) accept an optional ``fidelity``
object; when present, the solve is routed here instead of the
discard-only solver.  ``POST /score`` accepts the same object with a
``chosen`` assignment to evaluate.  The policy document:

``{"levels": [[0.85, 0.45], [0.6, 0.22]],  # (fidelity, size factor)
   "tiers": ["q85", "q60"],                # optional labels
   "catalog": {...},                       # explicit VariantCatalog doc
   "mode": "auto" | "uc" | "cb",           # default auto (best of both)
   "upgrade": true,                        # residual-budget upgrade pass
   "budgets": [1e6, 2e6],                  # optional → frontier sweep
   "compare": true}                        # include discard baseline

Catalog resolution order: explicit ``catalog`` doc, then ``levels``,
then a catalog attached to the instance itself
(``PARInstance.variants``, e.g. uploaded with a tenant archive), then
the :data:`repro.fidelity.catalog.DEFAULT_TIERS` menu.  Malformed
policies raise :class:`ValidationError`, which the service maps to a
structured 422.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Any, Dict, Optional

from repro.core.instance import PARInstance
from repro.errors import ValidationError
from repro.fidelity.catalog import VariantCatalog
from repro.fidelity.frontier import budget_frontier
from repro.fidelity.solver import (
    exclusive_lazy_greedy,
    fidelity_main,
    fidelity_score,
)
from repro.obs import probes as _obs_probes

__all__ = [
    "resolve_catalog",
    "execute_fidelity_payload",
    "score_fidelity_payload",
]

_POLICY_KEYS = frozenset(
    ("catalog", "levels", "tiers", "mode", "upgrade", "budgets", "compare", "chosen")
)
_MODES = {"auto": None, "uc": "UC", "cb": "CB"}


def _check_policy(policy: Any) -> Dict[str, Any]:
    if not isinstance(policy, dict):
        raise ValidationError("fidelity policy must be an object")
    unknown = set(policy) - _POLICY_KEYS
    if unknown:
        raise ValidationError(
            f"unknown fidelity policy keys: {sorted(unknown)}"
        )
    if policy.get("mode", "auto") not in _MODES:
        raise ValidationError(
            f"fidelity mode must be one of {sorted(_MODES)}, "
            f"got {policy.get('mode')!r}"
        )
    if policy.get("catalog") is not None and policy.get("levels") is not None:
        raise ValidationError(
            "fidelity policy: 'catalog' and 'levels' are mutually exclusive"
        )
    return policy


def resolve_catalog(
    instance: PARInstance, policy: Dict[str, Any]
) -> VariantCatalog:
    """Resolve the variant catalog a policy refers to (see module doc)."""
    if policy.get("catalog") is not None:
        catalog = VariantCatalog.from_dict(policy["catalog"])
    elif policy.get("levels") is not None:
        levels = policy["levels"]
        if not isinstance(levels, (list, tuple)):
            raise ValidationError("fidelity levels must be a list of pairs")
        try:
            pairs = [(float(f), float(s)) for f, s in levels]
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed fidelity levels: {exc!r}"
            ) from exc
        catalog = VariantCatalog.from_levels(
            instance.costs, pairs, tiers=policy.get("tiers")
        )
    elif getattr(instance, "variants", None) is not None:
        catalog = instance.variants
    else:
        catalog = VariantCatalog.default(instance.costs)
    if catalog.n_photos != instance.n:
        raise ValidationError(
            f"fidelity catalog covers {catalog.n_photos} photos, "
            f"instance has {instance.n}"
        )
    return catalog


def _chosen_records(
    catalog: VariantCatalog, chosen: Dict[int, int]
) -> list:
    """Per-photo JSON records of an exclusive assignment, sorted by photo."""
    return [
        {
            "photo": int(p),
            "variant": int(vid - catalog.indptr[p]),
            "tier": catalog.tier[vid],
            "fidelity": float(catalog.fidelity[vid]),
            "cost": float(catalog.cost[vid]),
        }
        for p, vid in sorted(chosen.items())
    ]


def execute_fidelity_payload(
    policy: Any, *, instance: PARInstance
) -> Dict[str, Any]:
    """Run the fidelity policy for a solve payload; return the wire doc.

    With ``budgets`` the response is a frontier sweep
    (``algorithm: "fidelity-frontier"``); otherwise a single exclusive
    solve at the instance budget with the per-photo chosen variants and
    the quality report.
    """
    policy = _check_policy(policy)
    if policy.get("chosen") is not None:
        raise ValidationError(
            "fidelity policy: 'chosen' is a /score input, not a /solve one"
        )
    catalog = resolve_catalog(instance, policy)
    upgrade = bool(policy.get("upgrade", True))
    mode = _MODES[policy.get("mode", "auto")]

    if policy.get("budgets") is not None:
        budgets = policy["budgets"]
        if not isinstance(budgets, (list, tuple)) or not budgets:
            raise ValidationError(
                "fidelity budgets must be a non-empty list"
            )
        doc = budget_frontier(
            instance,
            catalog,
            [float(b) for b in budgets],
            upgrade=upgrade,
            compare=bool(policy.get("compare", True)),
        )
        doc["algorithm"] = "fidelity-frontier"
        return doc

    t0 = _perf_counter()
    if mode is None:
        run = fidelity_main(instance, catalog, upgrade=upgrade)
    else:
        run = exclusive_lazy_greedy(instance, catalog, mode, upgrade=upgrade)
    elapsed = _perf_counter() - t0
    quality = catalog.describe_selection(run.chosen)
    _obs = _obs_probes.active()
    if _obs is not None:
        _obs.fidelity_mean_fidelity.set(quality["mean_fidelity"])
    return {
        "algorithm": "fidelity",
        "mode": run.mode,
        "selection": sorted(int(p) for p in run.chosen),
        "chosen": _chosen_records(catalog, run.chosen),
        "value": run.value,
        "cost": run.cost,
        "budget": instance.budget,
        "budget_utilisation": run.cost / instance.budget,
        "evaluations": run.evaluations,
        "upgrades": len(run.upgrades),
        "quality": quality,
        "elapsed_seconds": elapsed,
    }


def score_fidelity_payload(
    policy: Any, *, instance: PARInstance
) -> Dict[str, Any]:
    """Score an explicit exclusive assignment (the ``/score`` path).

    ``policy["chosen"]`` lists ``{"photo": id, "variant": local_slot}``
    records (slot 0 = original); photos absent from the list are
    dropped.  Returns value, cost, feasibility, and the quality report.
    """
    policy = _check_policy(policy)
    records = policy.get("chosen")
    if not isinstance(records, (list, tuple)):
        raise ValidationError(
            "fidelity score needs a 'chosen' list of {photo, variant}"
        )
    catalog = resolve_catalog(instance, policy)
    chosen: Dict[int, int] = {}
    for rec in records:
        if not isinstance(rec, dict):
            raise ValidationError("each chosen entry must be an object")
        try:
            p = int(rec["photo"])
            slot = int(rec.get("variant", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed chosen entry: {exc!r}") from exc
        if not 0 <= p < instance.n:
            raise ValidationError(f"chosen photo {p} outside 0..{instance.n - 1}")
        if p in chosen:
            raise ValidationError(
                f"photo {p} chosen twice; at most one variant per photo"
            )
        width = int(catalog.indptr[p + 1] - catalog.indptr[p])
        if not 0 <= slot < width:
            raise ValidationError(
                f"photo {p} has {width} variants; slot {slot} does not exist"
            )
        chosen[p] = int(catalog.indptr[p]) + slot
    missing = instance.retained - set(chosen)
    cost = float(sum(catalog.cost[vid] for vid in chosen.values()))
    feasible = not missing and cost <= instance.budget * (1 + 1e-12)
    return {
        "value": fidelity_score(instance, catalog, chosen),
        "cost": cost,
        "budget": instance.budget,
        "feasible": feasible,
        "missing_retained": sorted(int(p) for p in missing),
        "quality": catalog.describe_selection(chosen),
    }
