"""The variant catalog: per-photo (cost, fidelity) renditions.

Multi-fidelity PAR (ROADMAP item 3) generalises the archive decision
from *keep or drop* to *keep at which rendition*.  Each photo offers a
short menu of variants — the original plus recompressed tiers (and, for
delta-encoded storage, a delta-vs-similar rendition) — and the exclusive
solver (:mod:`repro.fidelity.solver`) picks **at most one** variant per
photo under the byte budget.  "Dropped" is the implicit null action, not
a stored variant.

A :class:`VariantCatalog` is CSR-shaped: three flat arrays (``cost``,
``fidelity``, ``tier``) indexed by a per-photo ``indptr``, mirroring the
layout of :class:`repro.core.instance.SparseSimilarity` so catalogs ride
along with sparse streamed builds (:mod:`repro.scale`) and live ingest
(:mod:`repro.live`) without densification.  Within a photo, variants are
stored best-first: strictly decreasing fidelity *and* strictly
decreasing cost, with the original (fidelity 1) in slot 0.  Dominated
variants (cheaper-or-equal fidelity at equal-or-higher cost) are
rejected at build time — the solver's upgrade pass relies on "higher
fidelity costs strictly more".

The semantics a variant carries (see docs/multi_fidelity.md): keeping
photo ``p`` at fidelity ``φ`` covers every slot the original would
cover, at ``φ ·`` the original similarity.  A fidelity-1 catalog is
therefore *exactly* the discard-only problem, which is what lets
:func:`VariantCatalog.trivial` reproduce ``lazy_greedy`` bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.faults import check as _fault_check

__all__ = ["VariantCatalog", "DEFAULT_TIERS"]

_FORMAT = 1

#: The default recompression menu: (tier label, fidelity, size factor).
#: Factors follow the JPEG re-encode measurements of the recompression
#: papers cited in PAPERS.md — a quality-85 re-encode keeps ~85% of
#: perceptual similarity at ~45% of the bytes, a thumbnail-grade tier
#: keeps ~60% at ~22%.
DEFAULT_TIERS: Tuple[Tuple[str, float, float], ...] = (
    ("q85", 0.85, 0.45),
    ("q60", 0.60, 0.22),
)


class VariantCatalog:
    """Flat per-photo variant menus (CSR layout).

    Attributes
    ----------
    indptr:
        ``int64[n_photos + 1]`` — photo ``p``'s variants occupy the
        global variant-id range ``indptr[p]:indptr[p + 1]``.
    cost:
        ``float64[n_variants]`` — byte cost of each variant.
    fidelity:
        ``float64[n_variants]`` — quality retained, in ``(0, 1]``;
        slot 0 of every photo is the original at fidelity 1.
    tier:
        One label per variant (``"original"``, ``"q85"``, ...), used in
        quality reports and the ``phocus_fidelity_*`` metrics.
    photo_of:
        ``int64[n_variants]`` — the owning photo of each variant id.
    """

    __slots__ = ("indptr", "cost", "fidelity", "tier", "photo_of")

    def __init__(
        self,
        indptr: np.ndarray,
        cost: np.ndarray,
        fidelity: np.ndarray,
        tier: Sequence[str],
    ) -> None:
        _fault_check("fidelity.catalog")
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        cost = np.ascontiguousarray(cost, dtype=np.float64)
        fidelity = np.ascontiguousarray(fidelity, dtype=np.float64)
        tier = list(tier)
        if indptr.ndim != 1 or indptr.size < 2 or int(indptr[0]) != 0:
            raise ValidationError("variant catalog: malformed indptr")
        if np.any(np.diff(indptr) < 1):
            raise ValidationError(
                "variant catalog: every photo needs at least one variant"
            )
        nv = int(indptr[-1])
        if cost.shape != (nv,) or fidelity.shape != (nv,) or len(tier) != nv:
            raise ValidationError(
                "variant catalog: cost/fidelity/tier must have one entry "
                "per variant"
            )
        if np.any(cost <= 0):
            raise ValidationError("variant catalog: costs must be positive")
        if np.any(fidelity <= 0) or np.any(fidelity > 1):
            raise ValidationError(
                "variant catalog: fidelity must lie in (0, 1]"
            )
        starts = indptr[:-1]
        if not np.all(fidelity[starts] == 1.0):
            raise ValidationError(
                "variant catalog: slot 0 of every photo must be the "
                "original at fidelity 1"
            )
        # Best-first within a photo: strictly decreasing fidelity and cost
        # (equal boundary entries belong to the *next* photo's slot 0).
        interior = np.ones(nv, dtype=bool)
        interior[starts] = False
        interior = interior[1:]
        if np.any((np.diff(fidelity) >= 0) & interior):
            raise ValidationError(
                "variant catalog: per-photo fidelity must strictly decrease"
            )
        if np.any((np.diff(cost) >= 0) & interior):
            raise ValidationError(
                "variant catalog: per-photo cost must strictly decrease "
                "(a lower-fidelity variant that is not cheaper is dominated)"
            )
        self.indptr = indptr
        self.cost = cost
        self.fidelity = fidelity
        self.tier = tier
        self.photo_of = np.repeat(
            np.arange(self.n_photos, dtype=np.int64), np.diff(indptr)
        )

    # ------------------------------------------------------------ queries

    @property
    def n_photos(self) -> int:
        return self.indptr.size - 1

    @property
    def n_variants(self) -> int:
        return int(self.indptr[-1])

    def variants_of(self, photo_id: int) -> range:
        """Global variant ids of one photo (slot 0 is the original)."""
        return range(int(self.indptr[photo_id]), int(self.indptr[photo_id + 1]))

    def original_of(self, photo_id: int) -> int:
        """Variant id of the fidelity-1 original of ``photo_id``."""
        return int(self.indptr[photo_id])

    def is_trivial(self) -> bool:
        """True when every photo offers only its original."""
        return self.n_variants == self.n_photos

    def max_variants_per_photo(self) -> int:
        return int(np.diff(self.indptr).max())

    # ------------------------------------------------------- constructors

    @classmethod
    def trivial(cls, costs: Sequence[float]) -> "VariantCatalog":
        """One fidelity-1 variant per photo — the discard-only problem.

        The exclusive solver run on a trivial catalog reproduces
        ``lazy_greedy``'s picks, value, and evaluation count bit for bit
        (asserted by tests/test_fidelity.py).
        """
        costs = np.asarray(costs, dtype=np.float64)
        n = costs.size
        return cls(
            np.arange(n + 1, dtype=np.int64),
            costs,
            np.ones(n, dtype=np.float64),
            ["original"] * n,
        )

    @classmethod
    def from_levels(
        cls,
        costs: Sequence[float],
        levels: Sequence[Tuple[float, float]] = (),
        *,
        tiers: Optional[Sequence[str]] = None,
    ) -> "VariantCatalog":
        """Uniform recompression menu: every photo gets the same tiers.

        ``levels`` is a sequence of ``(fidelity, size_factor)`` pairs,
        both in ``(0, 1)`` — e.g. ``[(0.85, 0.45), (0.6, 0.22)]`` — the
        same encoding :func:`repro.extensions.compression.expand_with_compression`
        uses, so a flat expansion and a catalog built from the same
        levels describe the identical decision space.  Pairs may arrive
        in any order; they are sorted best-first per photo.
        """
        costs = np.asarray(costs, dtype=np.float64)
        n = costs.size
        if n == 0:
            raise ValidationError("variant catalog: no photos")
        pairs = [(float(f), float(s)) for f, s in levels]
        for f, s in pairs:
            if not (0.0 < f < 1.0):
                raise ValidationError(
                    f"compression level fidelity must lie in (0, 1), got {f!r}"
                )
            if not (0.0 < s < 1.0):
                raise ValidationError(
                    f"compression level size factor must lie in (0, 1), got {s!r}"
                )
        if tiers is None:
            tier_names = [f"c{f:g}x{s:g}" for f, s in pairs]
        else:
            tier_names = [str(t) for t in tiers]
            if len(tier_names) != len(pairs):
                raise ValidationError("one tier label required per level")
        order = sorted(range(len(pairs)), key=lambda i: -pairs[i][0])
        k = 1 + len(pairs)
        fid_row = np.array([1.0] + [pairs[i][0] for i in order])
        factor_row = np.array([1.0] + [pairs[i][1] for i in order])
        labels_row = ["original"] + [tier_names[i] for i in order]
        return cls(
            np.arange(0, (n + 1) * k, k, dtype=np.int64),
            (costs[:, None] * factor_row[None, :]).ravel(),
            np.tile(fid_row, n),
            labels_row * n,
        )

    @classmethod
    def default(cls, costs: Sequence[float]) -> "VariantCatalog":
        """The :data:`DEFAULT_TIERS` recompression menu."""
        return cls.from_levels(
            costs,
            [(f, s) for _, f, s in DEFAULT_TIERS],
            tiers=[t for t, _, _ in DEFAULT_TIERS],
        )

    # ------------------------------------------------------------- wire

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": _FORMAT,
            "indptr": self.indptr.tolist(),
            "cost": self.cost.tolist(),
            "fidelity": self.fidelity.tolist(),
            "tier": list(self.tier),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "VariantCatalog":
        if not isinstance(doc, dict):
            raise ValidationError("variant catalog document must be an object")
        if doc.get("format") != _FORMAT:
            raise ValidationError(
                f"unsupported variant catalog format {doc.get('format')!r}"
            )
        try:
            return cls(
                np.asarray(doc["indptr"], dtype=np.int64),
                np.asarray(doc["cost"], dtype=np.float64),
                np.asarray(doc["fidelity"], dtype=np.float64),
                [str(t) for t in doc["tier"]],
            )
        except ValidationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed variant catalog document: {exc!r}"
            ) from exc

    # ------------------------------------------------------------ reports

    def describe_selection(
        self, chosen: Dict[int, int]
    ) -> Dict[str, Any]:
        """Quality report for ``{photo_id: variant_id}`` choices.

        ``dropped`` counts photos with no chosen variant;
        ``mean_fidelity`` averages over *all* photos with dropped photos
        contributing 0, so it reads as "fraction of archive quality
        retained".
        """
        by_tier: Dict[str, int] = {}
        fid_sum = 0.0
        for p, vid in chosen.items():
            if not self.indptr[p] <= vid < self.indptr[p + 1]:
                raise ValidationError(
                    f"variant {vid} does not belong to photo {p}"
                )
            by_tier[self.tier[vid]] = by_tier.get(self.tier[vid], 0) + 1
            fid_sum += float(self.fidelity[vid])
        n = self.n_photos
        return {
            "photos": n,
            "kept": len(chosen),
            "dropped": n - len(chosen),
            "kept_original": by_tier.get("original", 0),
            "recompressed": len(chosen) - by_tier.get("original", 0),
            "by_tier": dict(sorted(by_tier.items())),
            "mean_fidelity": fid_sum / n if n else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VariantCatalog(photos={self.n_photos}, "
            f"variants={self.n_variants})"
        )
