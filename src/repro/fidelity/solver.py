"""Exclusive-choice CELF: at most one variant per photo under the budget.

Multi-fidelity PAR is a submodular knapsack with *item multiplicity*:
every photo contributes a menu of mutually exclusive variants (see
:class:`repro.fidelity.catalog.VariantCatalog`) and keeping photo ``p``
at fidelity ``φ`` covers each slot its original would cover at ``φ ·``
the original similarity.  The objective over exclusive choices
``A = {(p, φ_p)}`` is

    G(A) = Σ_q W(q) · Σ_j R(q, j) · max_{(p, φ) ∈ A, p ∈ q} φ·SIM(q, p, j)

which is monotone submodular in the set of chosen variants, so the CELF
machinery of :func:`repro.core.greedy.lazy_greedy` extends directly:

* the heap holds one entry **per variant** — ``(-key, counter, vid,
  stamp)``, exactly the encoding of ``lazy_greedy`` with variant ids in
  place of photo ids;
* a per-photo *exclusion set* skips every popped sibling of an already
  chosen photo (exclusivity is enforced at pop time, not by heap
  surgery);
* sibling entries are seeded with the **optimistic bound** ``φ ·
  gain₁(p)`` instead of an exact evaluation — valid because
  ``max(0, φ·s − b) ≤ φ·max(0, s − b)`` for ``b ≥ 0, φ ≤ 1`` — at stamp
  ``−1`` so they can never be accepted without a refresh.  Seeding
  therefore costs one exact evaluation per photo, the same as the
  discard-only solver;
* **upgrades ride the same drain**: because raising ``φ_p`` is monotone
  (every covered slot moves to ``max(best, φ_new·sim)``), swapping a
  chosen variant for a higher-fidelity sibling is just another
  insertion through :meth:`FidelityCoverageState.add` — so a popped
  sibling of an already chosen photo is treated as an *upgrade move*
  priced at its **incremental** cost ``cost(w) − cost(chosen_p)``.  The
  greedy therefore weighs "upgrade a kept photo" against "keep one more
  photo" at every step; lower-or-equal-fidelity siblings are skipped as
  dominated.  Upgrade keys are conservative: if a photo upgrades again
  between a push and a pop, the cached key underestimates (the
  incremental cost shrank), which can only delay the move, never accept
  a stale one — the stamp check forces an exact refresh before any
  accept.

Degradation contract: on a :meth:`VariantCatalog.trivial` catalog the
heap sequence, evaluation count, picks, value, and cost reproduce
``lazy_greedy`` bit for bit — the coverage kernel below accumulates
floats in the identical order (``1.0 · sims`` is exact in IEEE-754),
and :func:`fidelity_main` mirrors ``main_algorithm``'s best-of-UC/CB,
preserving the ``(1 − 1/e)/2``-style guarantee over the exclusive
ground set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.greedy import CB, UC, _MODES, GreedyMode
from repro.core.instance import PARInstance
from repro.errors import ConfigurationError, ValidationError
from repro.faults import check as _fault_check
from repro.fidelity.catalog import VariantCatalog
from repro.obs import probes as _obs_probes
from repro.resilience import deadline as _deadline

__all__ = [
    "FidelityCoverageState",
    "FidelityRun",
    "exclusive_lazy_greedy",
    "fidelity_main",
    "fidelity_score",
]


class FidelityCoverageState:
    """Incremental coverage under fidelity-scaled insertions.

    The φ-generalisation of :class:`repro.core.objective.CoverageState`'s
    kernel backend: ``add(p, φ)`` covers photo ``p``'s incidence slots at
    ``φ ·`` their stored similarity.  Accumulation order, masked dots,
    the gain-replay cache, and the write-back are copied verbatim from
    the discard-only kernel so that ``φ = 1`` insertions are bit-exact
    with ``CoverageState.add`` (``1.0 · s == s`` for every float).
    """

    __slots__ = (
        "instance",
        "_best_flat",
        "_value",
        "_selected",
        "_order",
        "_gain_cache",
    )

    def __init__(
        self,
        instance: PARInstance,
        selection: Iterable[Tuple[int, float]] = (),
    ) -> None:
        self.instance = instance
        self._best_flat = np.zeros(
            instance.incidence.total_slots, dtype=np.float64
        )
        self._value = 0.0
        self._selected: Dict[int, float] = {}
        self._order: List[Tuple[int, float]] = []
        # (photo, phi, stamp, total, segments) of the latest gain() —
        # replayed by an add() at the same selection size (the CELF
        # accept step always adds the entry it just refreshed).
        self._gain_cache = None
        for p, phi in selection:
            self.add(int(p), float(phi))

    @property
    def value(self) -> float:
        return self._value

    @property
    def size(self) -> int:
        return len(self._selected)

    @property
    def selected(self) -> Dict[int, float]:
        """``{photo_id: fidelity}`` of the insertions so far (copy)."""
        return dict(self._selected)

    @property
    def order(self) -> List[Tuple[int, float]]:
        return list(self._order)

    def __contains__(self, photo_id: int) -> bool:
        return int(photo_id) in self._selected

    def gain(self, photo_id: int, phi: float) -> float:
        """Marginal gain of inserting ``p`` at fidelity ``phi``.

        For a photo already selected at a *lower* fidelity this is the
        exact upgrade gain: raising ``φ_p`` is monotone, so the new
        coverage of every slot is simply ``max(best, φ_new·sim)`` — the
        same one-row evaluation as a fresh insertion, no removal or
        replay of the rest of the selection required.
        """
        p = int(photo_id)
        if self._selected.get(p, 0.0) >= phi:
            return 0.0
        total, segments = self._evaluate(p, phi)
        self._gain_cache = (p, phi, len(self._order), total, segments)
        return total

    def add(self, photo_id: int, phi: float) -> float:
        """Insert ``p`` at ``phi`` — or upgrade it, if already selected lower."""
        p = int(photo_id)
        if self._selected.get(p, 0.0) >= phi:
            return 0.0
        cache = self._gain_cache
        if (
            cache is not None
            and cache[0] == p
            and cache[1] == phi
            and cache[2] == len(self._order)
        ):
            realized, segments = cache[3], cache[4]
        else:
            realized, segments = self._evaluate(p, phi)
        best = self._best_flat
        for slots, scaled, positive in segments:
            best[slots[positive]] = scaled[positive]
        self._gain_cache = None
        self._selected[p] = phi
        self._order.append((p, phi))
        self._value += realized
        return realized

    def _evaluate(self, p: int, phi: float) -> Tuple[float, list]:
        """Kernel evaluation at fidelity ``phi`` (cf. ``_evaluate_kernel``).

        Identical slicing, masking, and per-membership dot order as the
        discard-only kernel; the only change is the pre-scaled
        similarity vector (left as the stored ``sims`` when ``phi == 1``
        so the trivial catalog accumulates the very same floats).
        """
        inc = self.instance.incidence
        s0 = inc.entry_indptr[p]
        e0 = inc.entry_indptr[p + 1]
        if s0 == e0:
            return 0.0, []
        slots = inc.slots[s0:e0]
        scaled = inc.sims[s0:e0]
        if phi != 1.0:
            scaled = phi * scaled
        delta = scaled - self._best_flat[slots]
        positive = delta > 0
        if not positive.any():
            return 0.0, []
        wrel = inc.wrel[s0:e0]
        ms = inc.photo_member_indptr[p]
        me = inc.photo_member_indptr[p + 1]
        if me - ms == 1:
            return float(wrel[positive] @ delta[positive]), [
                (slots, scaled, positive)
            ]
        eptr = inc.member_entry_indptr
        total = 0.0
        for k in range(ms, me):
            s = eptr[k] - s0
            e = eptr[k + 1] - s0
            pseg = positive[s:e]
            dsel = delta[s:e][pseg]
            if dsel.size:
                total += float(wrel[s:e][pseg] @ dsel)
        return total, [(slots, scaled, positive)]


@dataclass
class FidelityRun:
    """Outcome of one exclusive-choice pass.

    ``chosen`` maps photo id → chosen *variant id* (global, into the
    catalog's flat arrays); ``selection`` lists the photos in pick order
    (retention set first), matching ``GreedyRun.selection`` so the two
    run kinds are drop-in comparable.
    """

    selection: List[int]
    chosen: Dict[int, int]
    value: float
    cost: float
    mode: str
    evaluations: int = 0
    picks: List[Tuple[int, float]] = field(default_factory=list)
    #: applied upgrade swaps as (photo, from_variant, to_variant, gain).
    upgrades: List[Tuple[int, int, int, float]] = field(default_factory=list)


def exclusive_lazy_greedy(
    instance: PARInstance,
    catalog: VariantCatalog,
    mode: GreedyMode = CB,
    *,
    upgrade: bool = True,
) -> FidelityRun:
    """One exclusive-choice CELF pass (UC or CB) with in-drain upgrades.

    With ``upgrade=False`` siblings of a chosen photo are skipped at pop
    time (insert-only exclusive choice, the flat-expansion semantics);
    the default also considers upgrade moves priced at incremental cost.
    """
    if mode not in _MODES:
        raise ConfigurationError(f"unknown greedy mode {mode!r}; expected UC or CB")
    if catalog.n_photos != instance.n:
        raise ValidationError(
            f"variant catalog covers {catalog.n_photos} photos, "
            f"instance has {instance.n}"
        )

    indptr = catalog.indptr
    vcost = catalog.cost
    vfid = catalog.fidelity
    photo_of = catalog.photo_of
    budget = instance.budget
    budget_cap = budget * (1 + 1e-12)

    # Retained photos are kept at their original rendition — S0 is a
    # keep-as-is contract, not a keep-at-any-quality one.
    state = FidelityCoverageState(
        instance, ((p, 1.0) for p in instance.retained)
    )
    chosen: Dict[int, int] = {
        p: catalog.original_of(p) for p in instance.retained
    }
    # Seed cost mirrors PARInstance.cost_of: one fancy-indexed sum over
    # the retention ids in set-iteration order, so a trivial catalog
    # (variant costs == photo costs, vid == photo id) reproduces
    # lazy_greedy's ``spent`` float exactly.
    ids = list(frozenset(chosen.values()))
    spent = float(vcost[ids].sum()) if ids else 0.0
    run = FidelityRun(
        selection=list(state._selected),
        chosen=chosen,
        value=state.value,
        cost=spent,
        mode=mode,
        evaluations=0,
    )

    # --- seed: one exact evaluation per photo, optimistic siblings -----
    counter = 0
    heap: List[Tuple[float, int, int, int]] = []
    stamp = state.size
    for p in range(instance.n):
        if p in chosen:
            continue
        s, e = int(indptr[p]), int(indptr[p + 1])
        # Costs strictly decrease within a photo, so the last slot is the
        # cheapest variant; when even it cannot fit, the photo needs no
        # evaluation (matching lazy_greedy's unaffordable-seed skip).
        if spent + vcost[e - 1] > budget_cap:
            continue
        g1 = state.gain(p, 1.0)
        run.evaluations += 1
        for vid in range(s, e):
            if spent + vcost[vid] > budget_cap:
                continue
            if vid == s:
                gain, vstamp = g1, stamp
            else:
                # Upper bound φ·gain₁(p): never accepted un-refreshed.
                gain, vstamp = vfid[vid] * g1, -1
            key = gain / vcost[vid] if mode == CB else gain
            heapq.heappush(heap, (-key, counter, vid, vstamp))
            counter += 1

    _obs = _obs_probes.active()
    _t0 = _perf_counter() if _obs is not None else 0.0

    # --- CELF drain (the lazy_greedy hot loop over variant ids) -------
    size = state.size
    _dl = _deadline.current()
    _dl_tick = 0
    while heap:
        _fault_check("solver.iteration")
        if _dl is not None:
            if (_dl_tick & 15) == 0 or _dl._interrupt is not None:
                if _dl.expired():
                    raise _dl.to_exception(None)
            _dl_tick += 1
        neg_key, _, vid, gain_stamp = heapq.heappop(heap)
        p = int(photo_of[vid])
        cur = chosen.get(p)
        if cur is not None:
            # Exclusivity: a sibling of a chosen photo is either an
            # upgrade move (strictly higher fidelity, priced at its
            # incremental cost) or dominated and skipped.
            if not upgrade or vid >= cur:
                continue
            _fault_check("fidelity.swap")
            extra = float(vcost[vid] - vcost[cur])
        else:
            extra = float(vcost[vid])
        if spent + extra > budget_cap:
            # ``spent − cost(chosen_p)`` only grows during the drain, so
            # this move can never become affordable again — drop it.
            continue
        if gain_stamp == size:
            realized = state.add(p, float(vfid[vid]))
            size += 1
            if cur is None:
                run.selection.append(p)
                run.picks.append((p, realized))
            else:
                run.upgrades.append((p, cur, vid, realized))
            chosen[p] = vid
            spent += extra
            run.value = state.value
            run.cost = spent
        else:
            gain = state.gain(p, float(vfid[vid]))
            run.evaluations += 1
            key = gain / extra if mode == CB else gain
            heapq.heappush(heap, (-key, counter, vid, size))
            counter += 1

    if _obs is not None:
        _obs.fidelity_solves.labels(mode=mode).inc()
        _obs.fidelity_solve_seconds.labels(mode=mode).observe(
            _perf_counter() - _t0
        )
        for p, vid in run.chosen.items():
            _obs.fidelity_variants_selected.labels(
                tier=catalog.tier[vid]
            ).inc()
        if run.upgrades:
            _obs.fidelity_upgrade_swaps.inc(len(run.upgrades))
    return run


def fidelity_main(
    instance: PARInstance,
    catalog: VariantCatalog,
    *,
    upgrade: bool = True,
) -> FidelityRun:
    """Best of the UC and CB exclusive passes (Algorithm 1, lifted).

    The exclusive ground set (one element per variant, a partition
    matroid intersected with the knapsack) keeps the objective monotone
    submodular, so taking the better of the unit-cost and cost-benefit
    passes carries the same ``(1 − 1/e)/2``-style worst-case bound the
    discard-only ``main_algorithm`` has.  ``evaluations`` sums both
    passes, mirroring ``main_algorithm``.
    """
    res_uc = exclusive_lazy_greedy(instance, catalog, UC, upgrade=upgrade)
    res_cb = exclusive_lazy_greedy(instance, catalog, CB, upgrade=upgrade)
    winner = res_cb if res_cb.value >= res_uc.value else res_uc
    winner.evaluations = res_uc.evaluations + res_cb.evaluations
    return winner


def fidelity_score(
    instance: PARInstance,
    catalog: VariantCatalog,
    chosen: Dict[int, int],
) -> float:
    """Evaluate the exclusive objective from scratch (reference oracle).

    ``chosen`` maps photo id → variant id.  Quadratic in subset size,
    like :func:`repro.core.objective.score`; used by tests and the
    ``/score`` fidelity path.
    """
    total = 0.0
    for subset in instance.subsets:
        best = np.zeros(len(subset), dtype=np.float64)
        for j, photo_id in enumerate(subset.members):
            vid = chosen.get(int(photo_id))
            if vid is None:
                continue
            if not catalog.indptr[photo_id] <= vid < catalog.indptr[photo_id + 1]:
                raise ValidationError(
                    f"variant {vid} does not belong to photo {photo_id}"
                )
            idx, sims = subset.similarity.neighbors(j)
            np.maximum.at(best, idx, float(catalog.fidelity[vid]) * sims)
        total += float(subset.weight * (subset.relevance @ best))
    return total
