"""Multi-fidelity PAR: recompression as a first-class third action.

ROADMAP item 3.  Instead of the binary *keep or drop*, every photo
offers a menu of (cost, fidelity) variants — the original, recompressed
tiers, delta-vs-similar renditions — and the exclusive-choice CELF
solver picks at most one variant per photo under the byte budget.

* :mod:`repro.fidelity.catalog` — :class:`VariantCatalog`, the flat
  CSR-shaped per-photo variant menus;
* :mod:`repro.fidelity.solver` — the exclusive CELF solver
  (:func:`fidelity_main`, :func:`exclusive_lazy_greedy`) and the
  fidelity-scaled coverage state;
* :mod:`repro.fidelity.frontier` — budget-vs-quality sweeps against
  discard-only PHOcus (:func:`budget_frontier`);
* :mod:`repro.fidelity.policy` — the service-facing ``fidelity`` policy
  for ``/solve``, ``/score``, and ``/jobs``.

See docs/multi_fidelity.md for the model and guarantees.
"""

from repro.fidelity.catalog import DEFAULT_TIERS, VariantCatalog
from repro.fidelity.frontier import budget_frontier
from repro.fidelity.policy import (
    execute_fidelity_payload,
    resolve_catalog,
    score_fidelity_payload,
)
from repro.fidelity.solver import (
    FidelityCoverageState,
    FidelityRun,
    exclusive_lazy_greedy,
    fidelity_main,
    fidelity_score,
)

__all__ = [
    "DEFAULT_TIERS",
    "VariantCatalog",
    "FidelityCoverageState",
    "FidelityRun",
    "exclusive_lazy_greedy",
    "fidelity_main",
    "fidelity_score",
    "budget_frontier",
    "resolve_catalog",
    "execute_fidelity_payload",
    "score_fidelity_payload",
]
