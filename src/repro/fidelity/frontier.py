"""Budget-vs-quality frontiers: multi-fidelity vs discard-only PHOcus.

The headline claim of ROADMAP item 3 (and the recompression papers in
PAPERS.md) is that *keeping a cheaper rendition* beats *discarding* at
matched budgets.  :func:`budget_frontier` measures exactly that: for
every budget in a sweep it runs the exclusive multi-fidelity solver
(:func:`repro.fidelity.solver.fidelity_main`) and the discard-only
baseline (:func:`repro.core.greedy.main_algorithm`) on the same
instance and reports both objective values, wall-clock, and the
per-point dominance verdict.

The deployed *frontier policy* is best-of-both: discard-only is a
feasible point of the exclusive action space (pick originals only), so
a system offering recompression never has to return a worse archive —
each point's ``frontier_value`` is the max of the two runs.  The raw
exclusive value is reported alongside it, and the bench gate
(``benchmarks/bench_fidelity.py``) additionally requires the *raw*
exclusive value to weakly dominate at every budget and strictly at one
or more, so the committed numbers show genuine wins, not the fallback.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Any, Dict, Optional, Sequence

from repro.core.greedy import main_algorithm
from repro.core.instance import PARInstance
from repro.errors import ValidationError
from repro.faults import check as _fault_check
from repro.fidelity.catalog import VariantCatalog
from repro.fidelity.solver import fidelity_main
from repro.obs import probes as _obs_probes

__all__ = ["budget_frontier"]

#: Relative tolerance for dominance verdicts — two greedy values closer
#: than this are "equal" (float accumulation noise, not a real gap).
_DOMINANCE_RTOL = 1e-9


def budget_frontier(
    instance: PARInstance,
    catalog: VariantCatalog,
    budgets: Sequence[float],
    *,
    upgrade: bool = True,
    compare: bool = True,
) -> Dict[str, Any]:
    """Sweep budgets; solve multi-fidelity (and optionally discard-only).

    ``budgets`` are absolute byte budgets; each must cover the retention
    set.  Returns ``{"points": [...], "checks": {...}}`` where every
    point carries the exclusive run, the discard-only baseline (when
    ``compare``), and its dominance verdict; ``checks`` aggregates the
    weak/strict dominance the CI gate enforces.
    """
    budgets = [float(b) for b in budgets]
    if not budgets:
        raise ValidationError("budget_frontier: at least one budget required")
    if any(not b > 0 for b in budgets):
        raise ValidationError("budget_frontier: budgets must be positive")
    _obs = _obs_probes.active()

    points = []
    for b in sorted(budgets):
        _fault_check("fidelity.frontier")
        inst_b = instance.with_budget(b)

        t0 = _perf_counter()
        frun = fidelity_main(inst_b, catalog, upgrade=upgrade)
        fidelity_seconds = _perf_counter() - t0
        quality = catalog.describe_selection(frun.chosen)

        point: Dict[str, Any] = {
            "budget": b,
            "fidelity_value": frun.value,
            "fidelity_cost": frun.cost,
            "fidelity_mode": frun.mode,
            "fidelity_seconds": fidelity_seconds,
            "fidelity_evaluations": frun.evaluations,
            "upgrades": len(frun.upgrades),
            "quality": quality,
        }
        if compare:
            t0 = _perf_counter()
            drun = main_algorithm(inst_b)
            discard_seconds = _perf_counter() - t0
            tol = _DOMINANCE_RTOL * max(1.0, abs(drun.value))
            point.update(
                {
                    "discard_value": drun.value,
                    "discard_cost": drun.cost,
                    "discard_mode": drun.mode,
                    "discard_seconds": discard_seconds,
                    "discard_evaluations": drun.evaluations,
                    "discard_kept": len(drun.selection),
                    # The deployed policy: best of both runs.
                    "frontier_value": max(frun.value, drun.value),
                    "frontier_policy": (
                        "fidelity" if frun.value >= drun.value else "discard"
                    ),
                    "weakly_dominates": bool(frun.value >= drun.value - tol),
                    "strictly_dominates": bool(frun.value > drun.value + tol),
                }
            )
        points.append(point)
        if _obs is not None:
            _obs.fidelity_frontier_points.inc()

    doc: Dict[str, Any] = {"budgets": sorted(budgets), "points": points}
    if compare:
        doc["checks"] = {
            "weakly_dominates_all": all(p["weakly_dominates"] for p in points),
            "strict_points": sum(
                1 for p in points if p["strictly_dominates"]
            ),
        }
    return doc
