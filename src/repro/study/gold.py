"""Gold standards and expert preference judging (Section 5.4, part 2).

The second half of the paper's user study validates the quality metric
itself: experts compared PHOcus and Greedy-NCS solutions on 50 small
(~100 photo) samples and picked the better one (or "cannot decide"),
with the counts strongly favouring PHOcus (35/3/12, 37/4/9, 34/5/11).

We reproduce the protocol with a simulated expert:

* :func:`gold_standard` — the reference solution on a small sample,
  computed exactly (branch and bound) when tractable, otherwise by the
  optimal-guarantee Sviridenko algorithm;
* :class:`ExpertJudge` — compares two selections through the true
  objective *relative to the gold standard*, declares a tie when the gap
  is under an indifference threshold, and errs with a small probability
  (humans are noisy);
* :func:`run_preference_study` — the full 50-iteration protocol over
  random sub-instances of a dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bruteforce import branch_and_bound
from repro.core.instance import PARInstance
from repro.core.objective import score
from repro.core.solver import solve
from repro.core.sviridenko import sviridenko
from repro.errors import ValidationError

__all__ = ["gold_standard", "ExpertJudge", "PreferenceCounts", "run_preference_study"]


def gold_standard(instance: PARInstance, *, exact_limit: int = 40) -> Tuple[List[int], float]:
    """Reference solution for a (small) instance.

    Uses the exact branch-and-bound when at most ``exact_limit`` free
    photos remain, otherwise the Sviridenko optimal-guarantee algorithm —
    the strongest solutions a panel of experts could plausibly certify.
    """
    free = instance.n - len(instance.retained)
    if free <= exact_limit:
        result = branch_and_bound(instance)
        return result.selection, result.value
    result = sviridenko(instance, max_photos=10**9)
    return result.selection, result.value


@dataclass
class ExpertJudge:
    """A noisy expert who compares two selections on one instance.

    ``indifference`` is the relative quality gap under which the expert
    clicks "cannot decide"; ``error_rate`` is the probability of picking
    the worse side when there *is* a visible difference.
    """

    indifference: float = 0.03
    error_rate: float = 0.05
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if not (0.0 <= self.indifference < 1.0):
            raise ValidationError("indifference must lie in [0, 1)")
        if not (0.0 <= self.error_rate < 0.5):
            raise ValidationError("error_rate must lie in [0, 0.5)")

    def compare(
        self,
        instance: PARInstance,
        selection_a: Sequence[int],
        selection_b: Sequence[int],
    ) -> str:
        """Return ``"A"``, ``"B"`` or ``"tie"``."""
        value_a = score(instance, selection_a)
        value_b = score(instance, selection_b)
        reference = max(value_a, value_b, 1e-12)
        if abs(value_a - value_b) / reference < self.indifference:
            return "tie"
        better = "A" if value_a > value_b else "B"
        worse = "B" if better == "A" else "A"
        return worse if self.rng.random() < self.error_rate else better


@dataclass
class PreferenceCounts:
    """Tally of a preference study (the paper's 35/3/12-style counts)."""

    a_wins: int = 0
    b_wins: int = 0
    ties: int = 0
    label_a: str = "PHOcus"
    label_b: str = "Greedy-NCS"

    @property
    def iterations(self) -> int:
        return self.a_wins + self.b_wins + self.ties

    def as_dict(self) -> Dict[str, int]:
        return {self.label_a: self.a_wins, self.label_b: self.b_wins, "tie": self.ties}


def run_preference_study(
    instance: PARInstance,
    *,
    iterations: int = 50,
    sample_size: int = 100,
    budget_fraction: float = 0.25,
    algorithm_a: str = "phocus",
    algorithm_b: str = "greedy-ncs",
    judge: Optional[ExpertJudge] = None,
    rng: Optional[np.random.Generator] = None,
) -> PreferenceCounts:
    """The Section 5.4 part-2 protocol on one dataset instance.

    Each iteration samples ``sample_size`` photos, restricts the instance
    to them with a budget of ``budget_fraction`` of the sample's cost,
    solves with both algorithms, and lets the judge pick.
    """
    if iterations < 1:
        raise ValidationError("iterations must be positive")
    rng = rng or np.random.default_rng()
    judge = judge or ExpertJudge(rng=rng)
    counts = PreferenceCounts(label_a=algorithm_a, label_b=algorithm_b)

    sample_size = min(sample_size, instance.n)
    for _ in range(iterations):
        ids = sorted(
            int(p) for p in rng.choice(instance.n, size=sample_size, replace=False)
        )
        sub = instance.restricted(ids, budget=float("inf"))
        budget = max(
            sub.total_cost() * budget_fraction,
            sub.cost_of(sub.retained) + 1.0,
        )
        sub = sub.with_budget(budget)
        sol_a = solve(sub, algorithm_a, rng=rng)
        sol_b = solve(sub, algorithm_b, rng=rng)
        verdict = judge.compare(sub, sol_a.selection, sol_b.selection)
        if verdict == "A":
            counts.a_wins += 1
        elif verdict == "B":
            counts.b_wins += 1
        else:
            counts.ties += 1
    return counts
