"""Simulated user study: analyst model, gold standards, preference judging."""

from repro.study.gold import (
    ExpertJudge,
    PreferenceCounts,
    gold_standard,
    run_preference_study,
)
from repro.study.manual import AnalystProfile, ManualOutcome, simulated_analyst
from repro.study.metrics import (
    agreement_report,
    byte_weighted_overlap,
    jaccard,
    precision_recall,
    quality_ratio,
)

__all__ = [
    "AnalystProfile",
    "ManualOutcome",
    "simulated_analyst",
    "gold_standard",
    "ExpertJudge",
    "PreferenceCounts",
    "run_preference_study",
    "jaccard",
    "precision_recall",
    "byte_weighted_overlap",
    "quality_ratio",
    "agreement_report",
]
