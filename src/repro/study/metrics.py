"""Selection-agreement metrics for gold-standard validation.

The second part of the user study (Section 5.4) validates the quality
function against expert judgement.  Beyond the preference protocol, the
natural quantitative companions are agreement metrics between a method's
selection and a gold-standard selection — this module provides the
standard ones, photo-count based and byte-weighted:

* :func:`jaccard` — set overlap of the selections;
* :func:`precision_recall` — of the method's kept photos, how many the
  gold standard also keeps (precision), and how much of the gold standard
  the method recovers (recall);
* :func:`byte_weighted_overlap` — the same recall weighted by photo cost,
  since archiving one 5 MB hero image is not one-fifth as important as
  five thumbnails;
* :func:`quality_ratio` — achieved objective over the gold standard's.

All metrics tolerate the common real-world wrinkle that two selections of
equal quality may share few photos (near-duplicates substitute freely) —
which is exactly why the paper validates with *preference* judgements and
why :func:`quality_ratio` is the primary signal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.core.instance import PARInstance
from repro.core.objective import score

__all__ = [
    "jaccard",
    "precision_recall",
    "byte_weighted_overlap",
    "quality_ratio",
    "agreement_report",
]


def jaccard(selection: Iterable[int], gold: Iterable[int]) -> float:
    """|A ∩ B| / |A ∪ B| (1.0 when both are empty)."""
    a, b = set(selection), set(gold)
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def precision_recall(
    selection: Iterable[int], gold: Iterable[int]
) -> Tuple[float, float]:
    """(precision, recall) of a selection against the gold standard.

    Empty operands follow the usual conventions: precision of an empty
    selection is 1.0 (nothing wrongly kept); recall of an empty gold
    standard is 1.0 (nothing to recover).
    """
    a, b = set(selection), set(gold)
    precision = len(a & b) / len(a) if a else 1.0
    recall = len(a & b) / len(b) if b else 1.0
    return precision, recall


def byte_weighted_overlap(
    instance: PARInstance, selection: Iterable[int], gold: Iterable[int]
) -> float:
    """Bytes of the gold standard the selection also keeps, as a fraction."""
    a, b = set(selection), set(gold)
    gold_bytes = instance.cost_of(b)
    if gold_bytes <= 0:
        return 1.0
    return instance.cost_of(a & b) / gold_bytes


def quality_ratio(
    instance: PARInstance, selection: Iterable[int], gold: Iterable[int]
) -> float:
    """``G(selection) / G(gold)`` — the primary agreement signal.

    May exceed 1.0 when the "gold" standard is itself approximate.
    Returns 1.0 when the gold standard scores zero.
    """
    gold_value = score(instance, gold)
    if gold_value <= 0:
        return 1.0
    return score(instance, selection) / gold_value


def agreement_report(
    instance: PARInstance,
    selection: Sequence[int],
    gold: Sequence[int],
) -> Dict[str, float]:
    """All agreement metrics in one dict (for study tables)."""
    precision, recall = precision_recall(selection, gold)
    return {
        "jaccard": jaccard(selection, gold),
        "precision": precision,
        "recall": recall,
        "byte_weighted_overlap": byte_weighted_overlap(instance, selection, gold),
        "quality_ratio": quality_ratio(instance, selection, gold),
    }
