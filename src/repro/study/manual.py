"""Simulated business analyst (the manual baseline of Section 5.4).

The paper's user study compares PHOcus to "the manual work of domain
experts" — XYZ analysts curating landing-page imagery.  Without access to
humans we substitute a behavioural model calibrated to what the paper
reports about the analysts' process and outcomes:

* **strategy** — analysts work through landing pages from the most to the
  least important, and within a page browse photos in relevance order,
  keeping the best not-yet-selected shots; they notice near-duplicates of
  already-kept photos only with some probability (``duplicate_awareness``)
  and occasionally mis-rank photos (``attention_noise``) — the reasons the
  paper's Figure 5g shows PHOcus scoring 15–25% higher;
* **time** — every browsed photo costs inspection seconds and every page
  costs setup/curation overhead, plus a final revision pass; medium
  datasets land in the multi-hour range the paper reports (6–14 hours,
  Figure 5h) while PHOcus' solve-plus-review takes minutes.

The model is deliberately *generous* to the human: it never wastes budget
and it sees true relevance scores (only perturbed), so the quality gap
against PHOcus comes purely from local, page-at-a-time decision making —
the same structural handicap real analysts face.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

import numpy as np

from repro.core.instance import PARInstance
from repro.errors import ValidationError

__all__ = ["AnalystProfile", "ManualOutcome", "simulated_analyst"]


@dataclass(frozen=True)
class AnalystProfile:
    """Behavioural and timing parameters of a simulated analyst."""

    attention_noise: float = 0.15
    duplicate_awareness: float = 0.6
    duplicate_threshold: float = 0.75
    seconds_per_photo: float = 4.0
    seconds_per_page: float = 90.0
    revision_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not (0.0 <= self.attention_noise <= 1.0):
            raise ValidationError("attention_noise must lie in [0, 1]")
        if not (0.0 <= self.duplicate_awareness <= 1.0):
            raise ValidationError("duplicate_awareness must lie in [0, 1]")
        if self.seconds_per_photo <= 0 or self.seconds_per_page < 0:
            raise ValidationError("timing parameters must be positive")


@dataclass
class ManualOutcome:
    """A manual curation run: the selection plus the simulated effort."""

    selection: List[int]
    seconds: float
    photos_browsed: int
    pages_visited: int

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0


def simulated_analyst(
    instance: PARInstance,
    profile: AnalystProfile = AnalystProfile(),
    rng: Optional[np.random.Generator] = None,
) -> ManualOutcome:
    """Run the analyst model on an instance; returns selection and effort.

    The analyst starts from the mandatory set ``S0`` (contract photos are
    pinned for them), then walks pages by importance, picking perturbed-
    relevance-ordered photos that fit the budget, skipping photos they
    recognise as near-duplicates of already-kept ones.
    """
    rng = rng or np.random.default_rng()
    selection: Set[int] = set(instance.retained)
    spent = instance.cost_of(selection)
    budget = instance.budget

    photos_browsed = 0
    pages_visited = 0

    page_order = np.argsort([-q.weight for q in instance.subsets], kind="stable")
    for qi in page_order:
        subset = instance.subsets[int(qi)]
        pages_visited += 1
        # Perceived relevance: true relevance with attention noise.
        noise = rng.normal(0.0, profile.attention_noise, size=len(subset))
        perceived = subset.relevance * (1.0 + noise)
        browse_order = np.argsort(-perceived, kind="stable")

        kept_this_page = 0
        for local in browse_order:
            local = int(local)
            photo_id = int(subset.members[local])
            photos_browsed += 1
            if photo_id in selection:
                kept_this_page += 1
                continue
            if spent + instance.costs[photo_id] > budget * (1 + 1e-12):
                continue
            # Duplicate check: with some probability the analyst notices a
            # very similar photo is already kept and skips this one.
            if kept_this_page > 0 and rng.random() < profile.duplicate_awareness:
                idx, sims = subset.similarity.neighbors(local)
                kept_similar = any(
                    int(subset.members[int(j)]) in selection and s >= profile.duplicate_threshold
                    for j, s in zip(idx, sims)
                    if int(j) != local
                )
                if kept_similar:
                    continue
            selection.add(photo_id)
            spent += float(instance.costs[photo_id])
            kept_this_page += 1
            # A page needs only a handful of keepers before the analyst
            # moves on (the paper's pages display a small set of images).
            if kept_this_page >= max(2, len(subset) // 4):
                break

    browse_seconds = photos_browsed * profile.seconds_per_photo
    page_seconds = pages_visited * profile.seconds_per_page
    total = (browse_seconds + page_seconds) * (1.0 + profile.revision_fraction)
    return ManualOutcome(
        selection=sorted(selection),
        seconds=total,
        photos_browsed=photos_browsed,
        pages_visited=pages_visited,
    )
