"""The job manager: durable queued solves on a worker pool.

:class:`JobManager` is the orchestration façade the service and CLI talk
to: ``submit`` / ``status`` / ``result`` / ``cancel`` / ``stats``.  It
owns the fair bounded queue (:mod:`repro.jobs.queue`), the worker pool
(:mod:`repro.jobs.worker`), and the durability layer
(:mod:`repro.jobs.store`), and implements the scheduling policy:

* every state change is persisted *before* the next scheduling step, so
  a crash leaves a journal a fresh manager can replay;
* transient failures (:func:`repro.core.solver.classify_failure`) are
  retried with exponential backoff + jitter up to ``max_attempts``;
  permanent failures and per-job timeouts fail immediately;
* cancellation works in every non-terminal state — queued jobs are pulled
  out of the queue, running jobs are flagged and abandoned at the next
  cancellation checkpoint;
* on construction, unfinished jobs recovered from the journal (QUEUED or
  RUNNING at crash time) are re-enqueued exactly once; finished jobs are
  kept as queryable history.
"""

from __future__ import annotations

import inspect
import logging
import math
import random
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.core.checkpoint import (
    checkpoint_progress,
    decode_record_b64,
    encode_record_b64,
)
from repro.core.solver import PERMANENT, TRANSIENT, classify_failure
from repro.errors import (
    CheckpointError,
    DeadlineExceeded,
    ServiceOverloaded,
    ValidationError,
)
from repro.faults.plan import ProcessKilled
from repro.jobs.queue import FairPriorityQueue, QueueFull
from repro.jobs.spec import JobRecord, JobSpec, JobState, new_job_id
from repro.jobs.store import InMemoryJobStore, JobStore, JournalJobStore
from repro.jobs.worker import WorkerPool, execute_solve_payload, run_with_timeout
from repro.obs import probes as _obs_probes
from repro.obs import trace as _trace
from repro.resilience.deadline import Deadline, deadline_scope

__all__ = ["JobManager", "QueueFull"]

logger = logging.getLogger(__name__)


def _supports_checkpoints(fn: Callable[..., Any]) -> bool:
    """Whether a solve function accepts the checkpoint keyword hooks.

    Injected test solve_fns are usually plain ``spec → doc`` callables;
    they keep working untouched.  A function opts in by declaring
    ``checkpoint_sink`` (and ``resume_from``) keywords, or ``**kwargs``.
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return True
    return "checkpoint_sink" in params


class JobManager:
    """Accepts solve requests as durable jobs and runs them asynchronously.

    Parameters
    ----------
    workers:
        Size of the worker thread pool.
    queue_depth:
        Bound on waiting jobs; :class:`QueueFull` signals backpressure
        (``0`` disables the bound).
    journal_path:
        When given, jobs are journalled to this JSONL file and unfinished
        ones are replayed on construction.  Mutually exclusive with
        ``store``.
    store:
        An explicit :class:`~repro.jobs.store.JobStore` (default:
        in-memory).
    solve_fn:
        The function executed per job (``JobSpec → result doc``).  The
        default runs the real solver; tests inject failures through it.
    retry_base_delay / retry_max_delay:
        Exponential backoff envelope for transient retries (delay for
        attempt *k* is ``base · 2^(k-1)``, capped, with ±25% jitter).
    autostart:
        Start the worker pool immediately (set ``False`` to stage jobs
        without executing, e.g. in replay tests).
    default_checkpoint_every:
        When set, jobs that do not specify their own ``checkpoint_every``
        checkpoint every this-many greedy picks; replayed ``RUNNING``
        jobs then resume from their last checkpoint instead of starting
        from scratch.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 256,
        *,
        journal_path: Optional[str] = None,
        store: Optional[JobStore] = None,
        solve_fn: Optional[Callable[[JobSpec], Dict[str, Any]]] = None,
        retry_base_delay: float = 0.5,
        retry_max_delay: float = 30.0,
        latency_window: int = 512,
        autostart: bool = True,
        rng_seed: Optional[int] = None,
        default_checkpoint_every: Optional[int] = None,
        by_ref_resolver: Optional[Callable[[Dict[str, Any]], Any]] = None,
        wait_observer: Optional[Callable[[float], None]] = None,
    ) -> None:
        if store is not None and journal_path is not None:
            raise ValueError("give either store or journal_path, not both")
        if default_checkpoint_every is not None and default_checkpoint_every < 1:
            raise ValueError("default_checkpoint_every must be >= 1")
        self._store: JobStore = (
            store
            if store is not None
            else (JournalJobStore(journal_path) if journal_path else InMemoryJobStore())
        )
        self._default_checkpoint_every = default_checkpoint_every
        self._by_ref_resolver = by_ref_resolver
        self._solve_fn = solve_fn or self._default_solve
        self._solve_accepts_checkpoints = _supports_checkpoints(self._solve_fn)
        self._retry_base_delay = retry_base_delay
        self._retry_max_delay = retry_max_delay
        self._rng = random.Random(rng_seed)
        # Fed the measured queue wait (submission → first dequeue) of every
        # job; the service wires the admission controller's EWMA here.
        self._wait_observer = wait_observer
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._cancel_events: Dict[str, threading.Event] = {}
        # Per-running-job deadline handles; drain() trips every one with
        # expire_now("drain") so solves checkpoint and yield cooperatively.
        self._running_deadlines: Dict[str, Deadline] = {}
        self._draining = False
        self._timers: List[threading.Timer] = []
        self._dequeue_counter = 0
        self._latencies: deque = deque(maxlen=latency_window)
        self._queue = FairPriorityQueue(maxsize=queue_depth, on_pop=self._mark_dequeued)
        self._pool = WorkerPool(self._queue, self._execute, workers=workers)
        self._closed = False
        self._replay()
        if autostart:
            self.start()

    # ------------------------------------------------------------------ API

    def submit(self, spec: JobSpec) -> str:
        """Enqueue a job; returns its id.  Raises :class:`QueueFull` at capacity."""
        if self._closed:
            raise RuntimeError("job manager is shut down")
        if self._draining:
            raise ServiceOverloaded(
                "job manager is draining; submit to another instance",
                reason="draining",
            )
        record = JobRecord(spec=spec)
        with self._lock:
            if spec.job_id in self._records:
                raise ValueError(f"duplicate job id {spec.job_id!r}")
            self._records[spec.job_id] = record
            self._cancel_events[spec.job_id] = threading.Event()
        obs = _obs_probes.active()
        try:
            self._queue.put(record, tenant=spec.tenant, priority=spec.priority)
        except QueueFull:
            with self._lock:
                del self._records[spec.job_id]
                del self._cancel_events[spec.job_id]
            if obs is not None:
                obs.jobs_rejected.inc()
            raise
        if obs is not None:
            obs.jobs_submitted.labels(tenant=spec.tenant).inc()
        self._store.save(record)
        return spec.job_id

    def submit_solve(self, instance_doc: Dict[str, Any], **spec_kwargs: Any) -> str:
        """Convenience: build a :class:`JobSpec` (fresh id) and submit it."""
        spec_kwargs.setdefault("job_id", new_job_id())
        return self.submit(JobSpec(instance=instance_doc, **spec_kwargs))

    def status(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The public record document, or ``None`` for an unknown id."""
        with self._lock:
            record = self._records.get(job_id)
            return record.public_dict() if record is not None else None

    def result(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The solution document of a SUCCEEDED job (``None`` otherwise)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.state is not JobState.SUCCEEDED:
                return None
            return record.result

    def wait(self, job_id: str, timeout: float = 30.0, poll: float = 0.01) -> Dict[str, Any]:
        """Block until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc is None:
                raise KeyError(f"unknown job {job_id!r}")
            if JobState(doc["state"]).terminal:
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} not finished after {timeout}s")
            time.sleep(poll)

    def cancel(self, job_id: str) -> bool:
        """Request cancellation.  True iff the job was still cancellable."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise KeyError(f"unknown job {job_id!r}")
            if record.terminal:
                return False
            event = self._cancel_events.get(job_id)
            if event is not None:
                event.set()
            if record.state is JobState.QUEUED:
                removed = self._queue.remove(lambda item: item.job_id == job_id)
                # Not in the queue: either a retry timer holds it (cancel
                # now; the timer checks state) or a worker just popped it
                # (the worker's pre-flight checkpoint sees the event).
                if removed is not None or record.state is JobState.QUEUED:
                    record.transition(JobState.CANCELLED)
                    record.error_kind = "cancelled"
                    record.finished_at = time.time()
                    self._store.save(record)
                    self._count_cancelled(record)
            return True

    def jobs(
        self, state: Optional[str] = None, tenant: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Public documents of all known jobs, optionally filtered."""
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.submitted_at)
            docs = [
                r.public_dict()
                for r in records
                if (state is None or r.state.value == state)
                and (tenant is None or r.tenant == tenant)
            ]
        return docs

    def stats(self) -> Dict[str, Any]:
        """Operational gauges: depth, per-state counts, utilisation, latency."""
        with self._lock:
            by_state = {s.value: 0 for s in JobState}
            for record in self._records.values():
                by_state[record.state.value] += 1
            latencies = sorted(self._latencies)
        busy = self._pool.busy_count
        stats: Dict[str, Any] = {
            "draining": self._draining,
            "queue": {
                "depth": len(self._queue),
                "limit": self._queue.maxsize,
                "by_tenant": self._queue.depth_by_tenant(),
                "oldest_wait_seconds": round(
                    self._queue.oldest_wait_seconds(), 4
                ),
            },
            "jobs": by_state,
            "workers": {
                "total": self._pool.size,
                "busy": busy,
                "utilisation": busy / self._pool.size if self._pool.size else 0.0,
            },
            "solve_latency_seconds": {
                "count": len(latencies),
                "p50": _percentile(latencies, 0.50),
                "p90": _percentile(latencies, 0.90),
                "p99": _percentile(latencies, 0.99),
            },
        }
        if isinstance(self._store, JournalJobStore):
            stats["journal"] = {
                "replayed": self._store.replayed_count,
                "quarantined": self._store.quarantined_count,
                "compactions": self._store.compaction_count,
            }
        obs = _obs_probes.active()
        if obs is not None:
            # Failure classification tallies (classify_failure verdicts,
            # retries, timeouts, 429s) live in the obs registry; surface
            # them next to the journal gauges when observability is on.
            stats["failures"] = obs.failure_counts()
        return stats

    def start(self) -> "JobManager":
        self._pool.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop workers and retry timers and close the store.

        Unfinished jobs stay QUEUED/RUNNING in the journal — a future
        manager on the same journal picks them up.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            timers, self._timers = self._timers, []
        for timer in timers:
            timer.cancel()
        self._pool.stop(wait=wait)
        self._store.close()

    def drain(self, grace_seconds: float = 10.0) -> Dict[str, Any]:
        """Gracefully stop: checkpoint running jobs and requeue them.

        The drain sequence (idempotent; returns a summary document):

        1. stop accepting — new :meth:`submit` calls shed with
           :class:`~repro.errors.ServiceOverloaded` (``reason="draining"``);
           pending retry timers are cancelled (their jobs are already
           journalled QUEUED and will replay).
        2. interrupt — every running job's deadline handle is tripped with
           ``expire_now("drain")``; the solver raises at its next
           cooperative check carrying a fresh checkpoint, and the outcome
           handler journals the job back to QUEUED.
        3. grace wait — up to ``grace_seconds`` for running jobs to yield.
        4. force-requeue stragglers — a non-cooperative solve (stuck in a
           C call, injected stall) is abandoned: its job goes back to
           QUEUED in the journal with its *last persisted* checkpoint, and
           the still-running thread can no longer touch the record (the
           checkpoint sink and outcome handler both re-check the state).
        5. shutdown — workers stop, the journal is flushed and closed.

        A fresh manager on the same journal replays every QUEUED job and
        resumes each solve from its checkpoint bit-identically.
        """
        self._draining = True
        obs = _obs_probes.active()
        if obs is not None:
            obs.resilience_draining.set(1)
        with self._lock:
            timers, self._timers = self._timers, []
        for timer in timers:
            timer.cancel()
        with self._lock:
            running_ids = set(self._running_deadlines)
            for deadline in self._running_deadlines.values():
                deadline.expire_now("drain")
        forced = 0
        wait_until = time.monotonic() + max(0.0, grace_seconds)
        while time.monotonic() < wait_until:
            with self._lock:
                if not any(
                    r.state is JobState.RUNNING for r in self._records.values()
                ):
                    break
            time.sleep(0.02)
        with self._lock:
            for record in self._records.values():
                if record.state is JobState.RUNNING:
                    # Straggler: abandon its solve thread, requeue from the
                    # last *persisted* checkpoint.  After this transition
                    # the solve thread's sink/outcome guards see != RUNNING
                    # and leave the record alone; setting the cancel event
                    # unblocks the worker thread polling the solve.
                    record.transition(JobState.QUEUED)
                    forced += 1
                    event = self._cancel_events.get(record.job_id)
                    if event is not None:
                        event.set()
                    try:
                        self._store.save(record)
                    except Exception:  # noqa: BLE001 - drain must not die
                        logger.exception(
                            "drain: failed to journal straggler %s", record.job_id
                        )
        self.shutdown(wait=True)
        summary = {
            "interrupted": len(running_ids),
            "forced_requeue": forced,
        }
        logger.info("drain complete: %s", summary)
        return summary

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting (the admission controller's queue view)."""
        return len(self._queue)

    @property
    def queue_limit(self) -> int:
        """The queue's hard bound (``0`` = unbounded)."""
        return self._queue.maxsize

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------ internals

    def _default_solve(
        self,
        spec: JobSpec,
        *,
        checkpoint_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        resume_from: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload = spec.solve_payload()
        if "checkpoint_every" not in payload and self._default_checkpoint_every:
            payload["checkpoint_every"] = self._default_checkpoint_every
        if spec.by_ref is not None:
            if self._by_ref_resolver is None:
                raise ValidationError(
                    "this job manager has no tenant store to resolve 'by_ref'"
                )
            # The resolver is a context manager factory (the service wires
            # Tenants.lease_for_solve): the cache lease spans the solve, so
            # the packed segment cannot be evicted mid-run.
            with self._by_ref_resolver(spec.by_ref) as instance:
                return execute_solve_payload(
                    payload,
                    instance=instance,
                    checkpoint_sink=checkpoint_sink,
                    resume_from=resume_from,
                )
        return execute_solve_payload(
            payload, checkpoint_sink=checkpoint_sink, resume_from=resume_from
        )

    @staticmethod
    def _count_cancelled(record: JobRecord) -> None:
        obs = _obs_probes.active()
        if obs is not None:
            obs.jobs_failures.labels(kind="cancelled").inc()
            obs.jobs_completed.labels(
                tenant=record.tenant, state=JobState.CANCELLED.value
            ).inc()

    def _mark_dequeued(self, record: JobRecord) -> None:
        # Runs under the queue lock, atomically with the pop: dequeue_seq
        # is therefore a faithful global dispatch order even with many
        # workers racing (tests assert tenant fairness on it).
        self._dequeue_counter += 1
        record.dequeue_seq = self._dequeue_counter

    def _replay(self) -> None:
        """Adopt journal state: finished jobs become history, unfinished
        jobs are re-enqueued exactly once (RUNNING-at-crash counts as
        unfinished — the attempt died with the old process).  A recovered
        RUNNING job keeps its last checkpoint, so its next attempt
        resumes mid-solve instead of starting over."""
        recovered = self._store.load_all()
        with self._lock:
            for record in sorted(recovered.values(), key=lambda r: r.submitted_at):
                self._records[record.job_id] = record
                if record.terminal:
                    continue
                self._cancel_events[record.job_id] = threading.Event()
                if record.state is JobState.RUNNING:
                    record.transition(JobState.QUEUED)
                    self._store.save(record)
                self._queue.put(
                    record,
                    tenant=record.tenant,
                    priority=record.spec.priority,
                    force=True,
                )

    def _execute(self, record: JobRecord) -> None:
        """Worker-side lifecycle of one dequeued job."""
        event = self._cancel_events.get(record.job_id) or threading.Event()
        with self._lock:
            if record.state is not JobState.QUEUED:
                return  # cancelled (or otherwise resolved) while waiting
            if event.is_set():
                record.transition(JobState.CANCELLED)
                record.error_kind = "cancelled"
                record.finished_at = time.time()
                self._store.save(record)
                self._count_cancelled(record)
                return
            record.transition(JobState.RUNNING)
            record.attempt += 1
            record.started_at = time.time()
            obs = _obs_probes.active()
            if record.attempt == 1:
                # True queue wait (submission → first dequeue); retry
                # attempts would fold the backoff delay in and lie.
                waited = max(0.0, record.started_at - record.submitted_at)
                if obs is not None:
                    obs.jobs_wait_seconds.observe(waited)
                if self._wait_observer is not None:
                    self._wait_observer(waited)
            # The job's latency budget counts from *submission*: a job that
            # waited out its whole deadline in the queue fails here without
            # burning a worker on an answer nobody is waiting for.
            budget_left: Optional[float] = None
            if record.spec.deadline_ms is not None:
                budget_left = record.spec.deadline_ms / 1000.0 - max(
                    0.0, record.started_at - record.submitted_at
                )
                if budget_left <= 0:
                    record.transition(JobState.FAILED)
                    record.error = (
                        f"deadline of {record.spec.deadline_ms:g}ms expired "
                        "in the queue before execution"
                    )
                    record.error_kind = "deadline"
                    record.finished_at = time.time()
                    if obs is not None:
                        obs.resilience_deadline_exceeded.labels(where="queue").inc()
                        obs.jobs_failures.labels(kind="deadline").inc()
                        obs.jobs_completed.labels(
                            tenant=record.tenant, state=record.state.value
                        ).inc()
                    self._store.save(record)
                    return
            # One deadline handle per execution: timed when the spec has a
            # budget, interrupt-only otherwise — either way drain() can
            # trip it and stop the solve at its next cooperative check.
            job_deadline = Deadline(budget_left)
            self._running_deadlines[record.job_id] = job_deadline
            resume_doc: Optional[Dict[str, Any]] = None
            if record.checkpoint and self._solve_accepts_checkpoints:
                try:
                    resume_doc = decode_record_b64(record.checkpoint)
                except CheckpointError as exc:
                    # A corrupt checkpoint never blocks the job — fall
                    # back to solving from scratch.
                    logger.warning(
                        "job %s: discarding corrupt checkpoint (%s)",
                        record.job_id,
                        exc,
                    )
                    record.checkpoint = None
                    record.checkpoint_progress = None
        self._store.save(record)

        if self._solve_accepts_checkpoints:

            def _on_checkpoint(doc: Dict[str, Any]) -> None:
                # Runs on the solve thread, possibly after a timeout or
                # cancel abandoned it — only persist while still RUNNING.
                blob = encode_record_b64(doc)
                progress = checkpoint_progress(doc)
                with self._lock:
                    if record.state is not JobState.RUNNING:
                        return
                    record.checkpoint = blob
                    record.checkpoint_progress = progress
                self._store.save(record)

            solve_call = lambda: self._solve_fn(  # noqa: E731
                record.spec,
                checkpoint_sink=_on_checkpoint,
                resume_from=resume_doc,
            )
        else:
            solve_call = lambda: self._solve_fn(record.spec)  # noqa: E731

        def scoped_solve() -> Any:
            # Runs on the solve thread run_with_timeout spawns — the
            # deadline scope must be armed there, not on this worker
            # thread, for the solver's thread-local check to see it.
            with deadline_scope(job_deadline):
                return solve_call()

        try:
            with _trace.span("jobs.execute") as sp:
                sp.annotate(
                    job_id=record.job_id,
                    tenant=record.tenant,
                    attempt=record.attempt,
                )
                outcome, value = run_with_timeout(
                    scoped_solve,
                    timeout=record.spec.timeout_seconds,
                    cancel_event=event,
                )
                sp.annotate(outcome=outcome)
        finally:
            self._running_deadlines.pop(record.job_id, None)

        if outcome == "error" and isinstance(value, ProcessKilled):
            # Emulated SIGKILL (fault injection): die *without* touching
            # the record, exactly as a real process death would — the
            # journal keeps the job RUNNING with its last checkpoint, and
            # the next manager on the same journal resumes it.
            raise value

        obs = _obs_probes.active()
        with self._lock:
            if record.state is not JobState.RUNNING:
                return  # resolved concurrently; nothing to record
            now = time.time()
            if outcome == "ok":
                record.transition(JobState.SUCCEEDED)
                record.result = value
                record.error = None
                record.error_kind = None
                record.checkpoint = None  # finished: the blob is dead weight
                record.finished_at = now
                record.solve_seconds = now - (record.started_at or now)
                self._latencies.append(record.solve_seconds)
                if obs is not None:
                    obs.jobs_run_seconds.observe(record.solve_seconds)
            elif outcome == "cancelled":
                record.transition(JobState.CANCELLED)
                record.error_kind = "cancelled"
                record.finished_at = now
            elif outcome == "error" and isinstance(value, DeadlineExceeded):
                # The solve stopped cooperatively and carried its latest
                # checkpoint out with the exception — persist it so the
                # work done is never lost, whatever happens next.
                if value.checkpoint is not None:
                    record.checkpoint = encode_record_b64(value.checkpoint)
                    record.checkpoint_progress = checkpoint_progress(
                        value.checkpoint
                    )
                if value.reason == "drain":
                    # Graceful drain: back to QUEUED (the legal retry
                    # transition) in the journal only — the next manager
                    # on this journal resumes the solve bit-identically.
                    record.transition(JobState.QUEUED)
                    record.error = None
                    record.error_kind = None
                    if obs is not None:
                        obs.jobs_drain_interrupted.inc()
                else:
                    # A genuine expiry: the client is gone; retrying for
                    # them wastes capacity (permanent), but the persisted
                    # checkpoint allows a deliberate manual resume.
                    record.transition(JobState.FAILED)
                    record.error = f"DeadlineExceeded: {value}"
                    record.error_kind = "deadline"
                    record.finished_at = now
                    if obs is not None:
                        obs.resilience_deadline_exceeded.labels(where="job").inc()
            elif outcome == "timeout":
                record.transition(JobState.FAILED)
                record.error = (
                    f"solve exceeded timeout of {record.spec.timeout_seconds}s"
                )
                record.error_kind = "timeout"
                record.finished_at = now
                if obs is not None:
                    obs.jobs_timeouts.inc()
            else:  # outcome == "error"
                exc = value
                kind = classify_failure(exc)
                record.error = f"{type(exc).__name__}: {exc}"
                if kind == TRANSIENT and record.attempt < record.spec.max_attempts:
                    record.error_kind = TRANSIENT
                    record.transition(JobState.QUEUED)
                    self._schedule_retry(record)
                    if obs is not None:
                        obs.jobs_retries.inc()
                else:
                    record.error_kind = (
                        PERMANENT if kind == PERMANENT else "transient_exhausted"
                    )
                    record.transition(JobState.FAILED)
                    record.finished_at = now
            if obs is not None:
                if record.error_kind is not None and outcome != "ok":
                    # error_kind doubles as the classify_failure verdict:
                    # transient / transient_exhausted / permanent / timeout
                    # / cancelled.
                    obs.jobs_failures.labels(kind=record.error_kind).inc()
                if record.terminal:
                    obs.jobs_completed.labels(
                        tenant=record.tenant, state=record.state.value
                    ).inc()
        self._store.save(record)

    def _schedule_retry(self, record: JobRecord) -> None:
        """Re-enqueue after exponential backoff with ±25% jitter."""
        delay = min(
            self._retry_max_delay,
            self._retry_base_delay * math.pow(2.0, record.attempt - 1),
        )
        delay *= 1.0 + self._rng.uniform(-0.25, 0.25)
        timer = threading.Timer(delay, self._requeue, args=(record,))
        timer.daemon = True
        self._timers.append(timer)
        timer.start()

    def _requeue(self, record: JobRecord) -> None:
        with self._lock:
            if self._closed or self._draining or record.state is not JobState.QUEUED:
                # Cancelled, shut down, or draining while backing off: the
                # job is journalled QUEUED either way and replays later.
                return
            self._queue.put(
                record,
                tenant=record.tenant,
                priority=record.spec.priority,
                force=True,
            )


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    index = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[index]
