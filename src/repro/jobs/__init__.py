"""Background job orchestration: queued async solves with durability.

The paper deploys the Solver as a blocking HTTP service; a production
archive system runs solves as *background jobs* over per-user
collections.  This package provides that substrate:

* :mod:`repro.jobs.spec` — job model and lifecycle state machine;
* :mod:`repro.jobs.queue` — bounded priority queue with per-tenant
  round-robin fairness (backpressure via :class:`QueueFull`);
* :mod:`repro.jobs.store` — pluggable persistence; the JSONL journal
  store survives crashes and replays unfinished jobs;
* :mod:`repro.jobs.worker` — the worker thread pool, per-job timeouts,
  cancellation checkpoints, and the shared solve-payload executor;
* :mod:`repro.jobs.manager` — :class:`JobManager`, the façade
  (``submit`` / ``status`` / ``result`` / ``cancel`` / ``stats``) with
  transient-failure retries (exponential backoff + jitter).

Quickstart::

    from repro.core.serialize import instance_to_dict
    from repro.jobs import JobManager

    with JobManager(workers=4) as manager:
        job_id = manager.submit_solve(instance_to_dict(instance), tenant="alice")
        status = manager.wait(job_id)
        solution_doc = manager.result(job_id)
"""

from repro.jobs.manager import JobManager
from repro.jobs.queue import FairPriorityQueue, QueueFull
from repro.jobs.spec import JobRecord, JobSpec, JobState, new_job_id
from repro.jobs.store import InMemoryJobStore, JobStore, JournalJobStore
from repro.jobs.worker import WorkerPool, execute_solve_payload

__all__ = [
    "JobManager",
    "JobSpec",
    "JobRecord",
    "JobState",
    "new_job_id",
    "FairPriorityQueue",
    "QueueFull",
    "JobStore",
    "InMemoryJobStore",
    "JournalJobStore",
    "WorkerPool",
    "execute_solve_payload",
]
