"""Job model: specs, records, and the lifecycle state machine.

A *job* is one deferred solve request.  :class:`JobSpec` is the immutable
request — who asked (``tenant``), what to solve (the serialised instance
plus algorithm/τ parameters, exactly the ``POST /solve`` vocabulary), and
the execution envelope (priority, timeout, retry budget).  The mutable
execution state lives in :class:`JobRecord`, which walks the state machine

.. code-block:: text

    QUEUED ──► RUNNING ──► SUCCEEDED
       │          │  ╲
       │          │   ╲──► FAILED          (permanent / retries exhausted /
       │          │                         timeout)
       │          └─────► QUEUED           (transient failure → retry)
       └──────────┴─────► CANCELLED

Illegal transitions raise :class:`~repro.errors.ConfigurationError`, so a
buggy scheduler fails loudly instead of corrupting the journal.  Records
serialise with :meth:`JobRecord.to_dict` / :meth:`JobRecord.from_dict`;
the instance travels in the :mod:`repro.core.serialize` wire format, so a
journal line is self-contained and can be re-executed after a restart.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, FrozenSet, Optional

from repro.errors import ConfigurationError, ValidationError

__all__ = ["JobState", "JobSpec", "JobRecord", "new_job_id"]


class JobState(str, Enum):
    """Lifecycle states of a job."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL: FrozenSet[JobState] = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
)

# RUNNING → QUEUED is the retry re-queue after a transient failure.
_TRANSITIONS: Dict[JobState, FrozenSet[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.QUEUED}
    ),
    JobState.SUCCEEDED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def new_job_id() -> str:
    """A fresh, URL-safe job identifier."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class JobSpec:
    """The immutable request half of a job.

    ``instance`` is the serialised PAR instance document
    (:func:`repro.core.serialize.instance_to_dict` format); the solve
    parameters mirror the synchronous ``POST /solve`` body so a job is
    exactly "a /solve request, deferred".
    """

    job_id: str
    # Exactly one of the two instance sources: an inline wire-format
    # document, or a tenant-store reference ({"tenant", "instance_id",
    # "version"?}) resolved at execution time through the warm cache.
    instance: Optional[Dict[str, Any]] = None
    by_ref: Optional[Dict[str, Any]] = None
    tenant: str = "default"
    algorithm: str = "phocus"
    tau: float = 0.0
    sparsify_method: str = "exact"
    certificate: bool = False
    seed: Optional[int] = None
    priority: int = 0
    timeout_seconds: Optional[float] = None
    # Total latency budget in milliseconds, measured from *submission*
    # (queue wait included).  A job whose budget expires is failed with
    # error_kind="deadline", keeping its latest checkpoint for a manual
    # resume; ``None`` means no deadline.
    deadline_ms: Optional[float] = None
    max_attempts: int = 3
    checkpoint_every: Optional[int] = None
    # A budget sweep: solve the same instance once per budget (a Fig 5
    # curve as one job).  parallel_workers > 1 fans the sweep out over the
    # shared-memory process pool (repro.core.parallel).
    budgets: Optional[Tuple[float, ...]] = None
    parallel_workers: Optional[int] = None
    # Multi-fidelity policy document (repro.fidelity.policy vocabulary):
    # when present the solve routes to the exclusive-choice solver.
    fidelity: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValidationError("job_id must be non-empty")
        if (self.instance is None) == (self.by_ref is None):
            raise ValidationError(
                "a job needs exactly one of 'instance' (inline document) or "
                "'by_ref' (tenant store reference)"
            )
        if self.by_ref is not None and not isinstance(self.by_ref, dict):
            raise ValidationError("'by_ref' must be an object")
        if not self.tenant:
            raise ValidationError("tenant must be non-empty")
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValidationError("timeout_seconds must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValidationError("deadline_ms must be positive")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        if self.budgets is not None:
            budgets = tuple(float(b) for b in self.budgets)
            if not budgets:
                raise ValidationError("budgets must be non-empty when given")
            if any(not (b > 0) for b in budgets):
                raise ValidationError("every sweep budget must be positive")
            object.__setattr__(self, "budgets", budgets)
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValidationError("parallel_workers must be >= 1")
        if self.fidelity is not None and not isinstance(self.fidelity, dict):
            raise ValidationError("'fidelity' must be a policy object")

    def solve_payload(self) -> Dict[str, Any]:
        """The equivalent ``POST /solve`` request body."""
        payload = {
            "algorithm": self.algorithm,
            "tau": self.tau,
            "sparsify_method": self.sparsify_method,
            "certificate": self.certificate,
            "seed": self.seed,
        }
        if self.instance is not None:
            payload["instance"] = self.instance
        else:
            payload["by_ref"] = self.by_ref
        if self.checkpoint_every is not None:
            payload["checkpoint_every"] = self.checkpoint_every
        if self.budgets is not None:
            payload["budgets"] = list(self.budgets)
        if self.parallel_workers is not None:
            payload["parallel_workers"] = self.parallel_workers
        if self.fidelity is not None:
            payload["fidelity"] = self.fidelity
        return payload

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "instance": self.instance,
            "by_ref": self.by_ref,
            "algorithm": self.algorithm,
            "tau": self.tau,
            "sparsify_method": self.sparsify_method,
            "certificate": self.certificate,
            "seed": self.seed,
            "priority": self.priority,
            "timeout_seconds": self.timeout_seconds,
            "deadline_ms": self.deadline_ms,
            "max_attempts": self.max_attempts,
            "checkpoint_every": self.checkpoint_every,
            "budgets": None if self.budgets is None else list(self.budgets),
            "parallel_workers": self.parallel_workers,
            "fidelity": self.fidelity,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobSpec":
        try:
            return cls(
                job_id=str(doc["job_id"]),
                tenant=str(doc.get("tenant", "default")),
                instance=doc.get("instance"),
                by_ref=doc.get("by_ref"),
                algorithm=str(doc.get("algorithm", "phocus")),
                tau=float(doc.get("tau", 0.0)),
                sparsify_method=str(doc.get("sparsify_method", "exact")),
                certificate=bool(doc.get("certificate", False)),
                seed=doc.get("seed"),
                priority=int(doc.get("priority", 0)),
                timeout_seconds=doc.get("timeout_seconds"),
                deadline_ms=doc.get("deadline_ms"),
                max_attempts=int(doc.get("max_attempts", 3)),
                checkpoint_every=doc.get("checkpoint_every"),
                budgets=(
                    None
                    if doc.get("budgets") is None
                    else tuple(float(b) for b in doc["budgets"])
                ),
                parallel_workers=(
                    None
                    if doc.get("parallel_workers") is None
                    else int(doc["parallel_workers"])
                ),
                fidelity=doc.get("fidelity"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed job spec document: {exc!r}") from exc


@dataclass
class JobRecord:
    """The mutable execution half of a job.

    Timings are ``time.time()`` epoch seconds; ``solve_seconds`` is the
    wall-clock of the *successful* attempt.  ``dequeue_seq`` is the global
    order in which the scheduler handed the job to a worker — tests use it
    to assert tenant fairness without racing on thread start times.
    """

    spec: JobSpec
    state: JobState = JobState.QUEUED
    attempt: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_kind: Optional[str] = None  # transient | permanent | timeout | cancelled
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    solve_seconds: Optional[float] = None
    dequeue_seq: Optional[int] = None
    # Latest resumable checkpoint: a base64 wire record
    # (repro.core.checkpoint) plus its small progress view.  The blob is
    # journal-only; the API serves just the progress dict.
    checkpoint: Optional[str] = None
    checkpoint_progress: Optional[Dict[str, Any]] = None

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def terminal(self) -> bool:
        return self.state.terminal

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the state machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"job {self.job_id}: illegal transition {self.state.value} → "
                f"{new_state.value}"
            )
        self.state = new_state

    def to_dict(self, *, include_instance: bool = True) -> Dict[str, Any]:
        spec_doc = self.spec.to_dict()
        if not include_instance:
            spec_doc.pop("instance", None)
        return {
            "spec": spec_doc,
            "state": self.state.value,
            "attempt": self.attempt,
            "result": self.result,
            "error": self.error,
            "error_kind": self.error_kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "solve_seconds": self.solve_seconds,
            "dequeue_seq": self.dequeue_seq,
            "checkpoint": self.checkpoint,
            "checkpoint_progress": self.checkpoint_progress,
        }

    def public_dict(self) -> Dict[str, Any]:
        """The API view of a record: everything except the (large) instance
        and the raw checkpoint blob (its progress view is kept)."""
        doc = self.to_dict(include_instance=False)
        doc.pop("checkpoint", None)
        doc["job_id"] = self.job_id
        doc["tenant"] = self.tenant
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        try:
            record = cls(
                spec=JobSpec.from_dict(doc["spec"]),
                state=JobState(doc.get("state", "QUEUED")),
                attempt=int(doc.get("attempt", 0)),
                result=doc.get("result"),
                error=doc.get("error"),
                error_kind=doc.get("error_kind"),
                submitted_at=float(doc.get("submitted_at", 0.0)),
                started_at=doc.get("started_at"),
                finished_at=doc.get("finished_at"),
                solve_seconds=doc.get("solve_seconds"),
                dequeue_seq=doc.get("dequeue_seq"),
                checkpoint=doc.get("checkpoint"),
                checkpoint_progress=doc.get("checkpoint_progress"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed job record document: {exc!r}") from exc
        return record
