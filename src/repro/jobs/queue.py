"""Bounded priority queue with per-tenant round-robin fairness.

A shared archive service must not let one tenant's 10 000-job backfill
starve everyone else's single interactive request.  The queue therefore
keeps one priority heap *per tenant* (higher ``priority`` first, FIFO
within a priority) and serves tenants round-robin: the scheduler pops
tenant A's best job, then tenant B's, then C's, and only returns to A
once every tenant with queued work has been served.  A consequence tests
rely on: no tenant's second job is dequeued before every waiting tenant's
first.

The queue is *bounded*: :meth:`put` raises :class:`QueueFull` once
``maxsize`` jobs are waiting, which the service layer translates into
HTTP 429 backpressure.  Internal re-queues (retries, journal replay) use
``force=True`` — a job that already got past admission must never be
dropped by its own retry.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs import probes as _obs_probes

__all__ = ["QueueFull", "FairPriorityQueue"]


class QueueFull(ReproError):
    """The bounded job queue is at capacity — callers should back off."""

    def __init__(self, depth: int, maxsize: int) -> None:
        super().__init__(f"job queue full ({depth}/{maxsize} jobs waiting)")
        self.depth = depth
        self.maxsize = maxsize


class FairPriorityQueue:
    """Priority queue with per-tenant round-robin and a bounded depth.

    ``maxsize=0`` means unbounded.  Items are arbitrary objects; ordering
    keys (``tenant``, ``priority``) are supplied at :meth:`put` time so
    the queue stays decoupled from the job model.
    """

    def __init__(
        self, maxsize: int = 0, on_pop: Optional[Callable[[Any], None]] = None
    ) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = maxsize
        # Invoked under the queue lock as each item is dequeued — lets the
        # owner stamp a global dequeue order atomically with the pop.
        self._on_pop = on_pop
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # tenant -> heap of (-priority, seq, item, enqueued_at); seq keeps
        # FIFO per priority, the timestamp feeds oldest_wait_seconds().
        self._heaps: Dict[str, List[Tuple[int, int, Any, float]]] = {}
        self._rotation: deque = deque()  # tenants with queued work, in serve order
        self._seq = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        with self._lock:
            return self._size

    def _gauge_depth(self) -> None:
        # Called under the queue lock after every size change; disarmed
        # cost is one global None test.
        obs = _obs_probes.active()
        if obs is not None:
            obs.jobs_queue_depth.set(self._size)

    def depth_by_tenant(self) -> Dict[str, int]:
        with self._lock:
            return {t: len(h) for t, h in self._heaps.items() if h}

    def oldest_wait_seconds(self) -> float:
        """How long the longest-waiting queued item has been waiting.

        A live head-of-line signal for admission control and readiness:
        unlike the dequeue-time EWMA it grows even when no worker is
        dequeuing at all (stuck pool, drain).  ``0.0`` when empty.
        """
        now = time.monotonic()
        with self._lock:
            oldest = None
            for heap in self._heaps.values():
                for _, _, _, enqueued_at in heap:
                    if oldest is None or enqueued_at < oldest:
                        oldest = enqueued_at
        return 0.0 if oldest is None else max(0.0, now - oldest)

    def put(self, item: Any, *, tenant: str, priority: int = 0, force: bool = False) -> None:
        """Enqueue ``item``; raise :class:`QueueFull` at capacity unless forced."""
        with self._lock:
            if not force and self.maxsize and self._size >= self.maxsize:
                raise QueueFull(self._size, self.maxsize)
            heap = self._heaps.get(tenant)
            if heap is None:
                heap = self._heaps[tenant] = []
            if not heap:
                self._rotation.append(tenant)
            heapq.heappush(
                heap, (-int(priority), next(self._seq), item, time.monotonic())
            )
            self._size += 1
            self._gauge_depth()
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Dequeue the next item fairly; ``None`` on timeout."""
        with self._not_empty:
            if not self._not_empty.wait_for(lambda: self._size > 0, timeout=timeout):
                return None
            tenant = self._rotation.popleft()
            heap = self._heaps[tenant]
            _, _, item, _ = heapq.heappop(heap)
            self._size -= 1
            self._gauge_depth()
            if heap:
                self._rotation.append(tenant)  # back of the line: round-robin
            if self._on_pop is not None:
                self._on_pop(item)
            return item

    def remove(self, predicate: Callable[[Any], bool]) -> Optional[Any]:
        """Remove and return the first queued item matching ``predicate``.

        Used to cancel a job that has not yet reached a worker.  Returns
        ``None`` when nothing matches.
        """
        with self._lock:
            for tenant, heap in self._heaps.items():
                for i, (_, _, item, _) in enumerate(heap):
                    if predicate(item):
                        heap[i] = heap[-1]
                        heap.pop()
                        heapq.heapify(heap)
                        self._size -= 1
                        self._gauge_depth()
                        if not heap:
                            try:
                                self._rotation.remove(tenant)
                            except ValueError:
                                pass
                        return item
        return None
