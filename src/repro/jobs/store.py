"""Pluggable job stores: in-memory, and a crash-safe JSONL journal.

The store is the durability layer under :class:`repro.jobs.manager.JobManager`.
Its contract is tiny — ``save`` a record snapshot on every state change,
``load_all`` the latest snapshot per job — so alternative backends (SQLite,
Redis, a real queue service) can slot in later without touching the
scheduler.

:class:`JournalJobStore` appends one JSON line per state change
(*append-only*: no seeks, no rewrites, so a crash can at worst truncate
the final line).  Replay reads the file top to bottom and keeps the last
snapshot per job id; a trailing partial line from a mid-write crash is
detected and ignored.  Records carry the full serialised instance in the
:mod:`repro.core.serialize` wire format, so a replayed ``QUEUED`` job can
be re-executed by a fresh manager with no other state.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Optional

from repro.jobs.spec import JobRecord

__all__ = ["JobStore", "InMemoryJobStore", "JournalJobStore"]


class JobStore:
    """Interface: persist job record snapshots and recover them."""

    def save(self, record: JobRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def load_all(self) -> Dict[str, JobRecord]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (default: nothing to do)."""


class InMemoryJobStore(JobStore):
    """Volatile store: records live only as long as the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}

    def save(self, record: JobRecord) -> None:
        with self._lock:
            self._records[record.job_id] = record

    def load_all(self) -> Dict[str, JobRecord]:
        with self._lock:
            return dict(self._records)


class JournalJobStore(InMemoryJobStore):
    """In-memory store backed by an append-only JSONL journal.

    Construction replays any existing journal at ``path`` into memory;
    the manager then decides which recovered jobs to re-enqueue.  Every
    ``save`` appends a full record snapshot and flushes + fsyncs, so the
    journal is consistent up to the last completed write even if the
    process dies mid-run.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._replayed = self._replay()
        self._file = open(self.path, "a", encoding="utf-8")

    @property
    def replayed_count(self) -> int:
        """How many distinct jobs the journal held at startup."""
        return self._replayed

    def _replay(self) -> int:
        if not os.path.exists(self.path):
            return 0
        recovered: Dict[str, JobRecord] = {}
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    record = JobRecord.from_dict(doc)
                except Exception:  # torn tail line from a crash — ignore
                    continue
                recovered[record.job_id] = record  # last snapshot wins
        with self._lock:
            self._records.update(recovered)
        return len(recovered)

    def save(self, record: JobRecord) -> None:
        line = json.dumps(record.to_dict()) + "\n"
        with self._lock:
            self._records[record.job_id] = record
            self._file.write(line)
            self._file.flush()
            os.fsync(self._file.fileno())

    def compact(self) -> None:
        """Rewrite the journal with one line per job (latest snapshots)."""
        with self._lock:
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                for record in self._records.values():
                    fh.write(json.dumps(record.to_dict()) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._file.close()
            os.replace(tmp, self.path)
            self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


def open_store(journal_path: Optional[str]) -> JobStore:
    """The default store for a manager: journalled when a path is given."""
    return JournalJobStore(journal_path) if journal_path else InMemoryJobStore()
