"""Pluggable job stores: in-memory, and a crash-safe JSONL journal.

The store is the durability layer under :class:`repro.jobs.manager.JobManager`.
Its contract is tiny — ``save`` a record snapshot on every state change,
``load_all`` the latest snapshot per job — so alternative backends (SQLite,
Redis, a real queue service) can slot in later without touching the
scheduler.

:class:`JournalJobStore` appends one CRC32-prefixed JSON line per state
change (*append-only*: no seeks, no rewrites, so a crash can at worst
truncate the final line).  Replay reads the file top to bottom and keeps
the last snapshot per job id; any corrupt line — torn tail, bit flip,
editor accident mid-file — is *quarantined*: logged, counted, skipped,
and the remainder of the journal still replays.  Records carry the full
serialised instance in the :mod:`repro.core.serialize` wire format plus
the latest solver checkpoint, so a replayed ``RUNNING`` job can resume
mid-solve on a fresh manager with no other state.

Durability/throughput trade-off is explicit via ``fsync_policy``:

``"always"``
    fsync after every append (default; exactly-once up to the last
    completed fsync).
``"batch"``
    fsync every ``fsync_every`` appends — bounded data loss, much less
    write amplification.
``"never"``
    flush only; rely on the OS page cache (tests / throwaway runs).

When the journal grows past ``compact_bytes`` *and* holds more lines
than live jobs, ``save`` triggers an automatic compaction: the latest
snapshots are rewritten through a same-directory temp file, fsynced,
atomically ``os.replace``d over the journal, and the directory entry is
fsynced — a crash at any point leaves either the old or the new journal,
never a mix.

Fault-injection sites (:mod:`repro.faults`): ``journal.write`` (raise or
corrupt an append), ``journal.fsync`` (drop the fsync), and
``journal.compact`` (die mid-compaction).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import zlib
from typing import Dict, Optional

from repro import faults
from repro.errors import ConfigurationError
from repro.ioutil import fsync_directory, raise_if_no_space
from repro.jobs.spec import JobRecord

__all__ = ["JobStore", "InMemoryJobStore", "JournalJobStore", "open_store"]

logger = logging.getLogger(__name__)

_FSYNC_POLICIES = frozenset({"always", "batch", "never"})


class JobStore:
    """Interface: persist job record snapshots and recover them."""

    def save(self, record: JobRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def load_all(self) -> Dict[str, JobRecord]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (default: nothing to do)."""


class InMemoryJobStore(JobStore):
    """Volatile store: records live only as long as the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}

    def save(self, record: JobRecord) -> None:
        with self._lock:
            self._records[record.job_id] = record

    def load_all(self) -> Dict[str, JobRecord]:
        with self._lock:
            return dict(self._records)


def _encode_line(doc: Dict[str, object]) -> bytes:
    """One journal line: ``crc32-hex SP json NL`` over the JSON bytes."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + payload + b"\n"


def _decode_line(line: bytes) -> Dict[str, object]:
    """Parse a journal line, verifying its CRC when one is present.

    Legacy journals (pre-CRC) wrote bare JSON lines; those still parse,
    just without corruption detection.  Raises ``ValueError`` on any
    defect so the caller can quarantine the line.
    """
    if len(line) > 9 and line[8:9] == b" ":
        prefix = line[:8]
        try:
            expected = int(prefix.decode("ascii"), 16)
        except (UnicodeDecodeError, ValueError):
            expected = None
        if expected is not None:
            payload = line[9:]
            if zlib.crc32(payload) & 0xFFFFFFFF != expected:
                raise ValueError("journal line CRC32 mismatch")
            doc = json.loads(payload.decode("utf-8"))
            if not isinstance(doc, dict):
                raise ValueError("journal line is not a JSON object")
            return doc
    doc = json.loads(line.decode("utf-8"))  # legacy bare-JSON line
    if not isinstance(doc, dict):
        raise ValueError("journal line is not a JSON object")
    return doc


class JournalJobStore(InMemoryJobStore):
    """In-memory store backed by an append-only, CRC-checked JSONL journal.

    Construction replays any existing journal at ``path`` into memory
    (quarantining corrupt lines); the manager then decides which
    recovered jobs to re-enqueue or resume.  See the module docstring
    for the durability policy and compaction protocol.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync_policy: str = "always",
        fsync_every: int = 16,
        compact_bytes: Optional[int] = None,
    ) -> None:
        if fsync_policy not in _FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync_policy must be one of {sorted(_FSYNC_POLICIES)}, "
                f"got {fsync_policy!r}"
            )
        if fsync_every < 1:
            raise ConfigurationError("fsync_every must be >= 1")
        if compact_bytes is not None and compact_bytes < 1:
            raise ConfigurationError("compact_bytes must be >= 1")
        super().__init__()
        self.path = str(path)
        self.fsync_policy = fsync_policy
        self.fsync_every = int(fsync_every)
        self.compact_bytes = compact_bytes
        self._quarantined = 0
        self._compactions = 0
        self._lines = 0  # journal lines on disk (live + superseded)
        self._unsynced = 0  # appends since the last fsync
        self._replayed = self._replay()
        self._file = open(self.path, "ab")

    @property
    def replayed_count(self) -> int:
        """How many distinct jobs the journal held at startup."""
        return self._replayed

    @property
    def quarantined_count(self) -> int:
        """Corrupt journal lines skipped during replay."""
        return self._quarantined

    @property
    def compaction_count(self) -> int:
        """How many times the journal has been compacted."""
        return self._compactions

    def _replay(self) -> int:
        if not os.path.exists(self.path):
            return 0
        recovered: Dict[str, JobRecord] = {}
        with open(self.path, "rb") as fh:
            for lineno, raw in enumerate(fh, start=1):
                line = raw.strip()
                if not line:
                    continue
                self._lines += 1
                try:
                    record = JobRecord.from_dict(_decode_line(line))
                except Exception as exc:
                    # Corrupt anywhere — torn tail or mid-file damage:
                    # quarantine the line, keep replaying the rest.
                    self._quarantined += 1
                    logger.warning(
                        "journal %s: quarantined corrupt line %d (%s)",
                        self.path,
                        lineno,
                        exc,
                    )
                    continue
                recovered[record.job_id] = record  # last snapshot wins
        with self._lock:
            self._records.update(recovered)
        return len(recovered)

    def _maybe_fsync_locked(self) -> None:
        self._unsynced += 1
        if self.fsync_policy == "never":
            return
        if self.fsync_policy == "batch" and self._unsynced < self.fsync_every:
            return
        if not faults.should_drop("journal.fsync"):
            os.fsync(self._file.fileno())
        self._unsynced = 0

    def save(self, record: JobRecord) -> None:
        try:
            faults.check("journal.write")
        except OSError as exc:
            # An injected ENOSPC behaves exactly like a real full disk
            # (structured 507); other injected types pass through intact.
            raise_if_no_space(exc, self.path)
            raise
        line = faults.mangle("journal.write", _encode_line(record.to_dict()))
        with self._lock:
            self._records[record.job_id] = record
            try:
                self._file.write(line)
                self._file.flush()
                self._maybe_fsync_locked()
            except OSError as exc:
                # A full disk surfaces here as a structured 507 instead of
                # an unhandled 500 (injected faults have no errno and keep
                # their original type for the chaos tests).
                raise_if_no_space(exc, self.path)
                raise
            self._lines += 1
            if self._due_for_compaction_locked():
                self._compact_locked()

    def _due_for_compaction_locked(self) -> bool:
        if self.compact_bytes is None:
            return False
        if self._lines <= len(self._records):
            return False  # nothing to reclaim
        try:
            return os.path.getsize(self.path) >= self.compact_bytes
        except OSError:
            return False

    def compact(self) -> None:
        """Rewrite the journal with one line per job (latest snapshots).

        Crash-safe: writes a same-directory temp file, fsyncs it,
        atomically replaces the journal, then fsyncs the directory.
        """
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        faults.check("journal.compact")
        tmp = self.path + ".compact.tmp"
        try:
            with open(tmp, "wb") as fh:
                for record in self._records.values():
                    fh.write(_encode_line(record.to_dict()))
                fh.flush()
                if not faults.should_drop("journal.fsync"):
                    os.fsync(fh.fileno())
            self._file.close()
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if self._file.closed:  # keep the store usable after the fault
                self._file = open(self.path, "ab")
            raise
        fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._file = open(self.path, "ab")
        self._lines = len(self._records)
        self._unsynced = 0
        self._compactions += 1

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


def open_store(journal_path: Optional[str]) -> JobStore:
    """The default store for a manager: journalled when a path is given."""
    return JournalJobStore(journal_path) if journal_path else InMemoryJobStore()
