"""Worker pool: threads that pull jobs off the queue and run solves.

Two layers live here:

* :func:`execute_solve_payload` — the one true implementation of "run a
  ``/solve``-shaped request": deserialise, optionally sparsify, solve,
  report the true objective.  The synchronous ``POST /solve`` fast path
  and every background job share it, so the two paths can never drift.
* :class:`WorkerPool` + :func:`run_with_timeout` — the execution
  machinery.  Each worker thread loops ``queue.get() → handler(job)``.
  The handler (the manager's ``_execute``) runs the solve in a *nested*
  thread so it can enforce a per-job timeout and observe cancellation at
  poll-interval checkpoints; Python threads cannot be killed, so a timed
  out / cancelled solve is abandoned (daemon thread) and its result
  discarded — the job record is what carries the truth.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro import faults as _faults
from repro.core.objective import score
from repro.core.serialize import instance_from_dict, solution_to_dict
from repro.core.solver import checkpointable_algorithms, solve
from repro.errors import ValidationError
from repro.obs import probes as _obs_probes
from repro.obs import trace as _trace
from repro.resilience.deadline import Deadline, deadline_scope
from repro.sparsify.pipeline import sparsify_instance

__all__ = ["execute_solve_payload", "run_with_timeout", "WorkerPool"]


def execute_solve_payload(
    payload: Dict[str, Any],
    *,
    instance: Optional[Any] = None,
    checkpoint_sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    resume_from: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Run a ``/solve``-style request body and return the response document.

    The payload vocabulary: ``instance`` (wire-format dict, required),
    ``algorithm``, ``tau``, ``sparsify_method``, ``certificate``, ``seed``,
    ``checkpoint_every``, ``budgets``, ``parallel_workers``.  The reported
    ``value`` is always the *true* objective on the original
    (unsparsified) instance.

    ``instance`` (keyword) bypasses the payload's ``instance`` document
    with an already-built :class:`~repro.core.instance.PARInstance` —
    the ``by_ref`` path resolves references through the tenant store and
    warm cache and hands the live instance in here, so by-reference and
    inline solves share every line below and can never drift.

    ``budgets`` turns the request into a *sweep*: the (possibly
    sparsified) instance is solved once per budget via
    :func:`repro.core.solver.solve_many` — fanned out over the
    shared-memory process pool when ``parallel_workers > 1`` — and the
    response is ``{"sweep": true, "solutions": [...]}`` with one solution
    document per budget, in budget order.  Sweeps are not checkpointable
    (each member solve is short; retries re-run the whole sweep), so the
    crash-safety hooks are ignored for them.

    ``checkpoint_sink`` / ``resume_from`` thread the crash-safety hooks
    through to :func:`repro.core.solver.solve`.  Resume is sound even
    under ``tau > 0``: sparsification happens before the solve and is
    deterministic in ``seed``, so the resumed run sees the identical
    sparsified instance the checkpoint was taken against.
    """
    # A payload deadline (the sync /solve path: header or body field) arms
    # a scope for this thread; job-path deadlines are armed by the manager
    # instead (measured from submission) and nest transparently.
    payload_deadline_ms = payload.get("deadline_ms")
    if payload_deadline_ms:
        with deadline_scope(Deadline(float(payload_deadline_ms) / 1000.0)):
            inner = dict(payload)
            inner.pop("deadline_ms", None)
            return execute_solve_payload(
                inner,
                instance=instance,
                checkpoint_sink=checkpoint_sink,
                resume_from=resume_from,
            )
    # Chaos site: a "drop" rule here stalls the solve deterministically —
    # overload and drain tests use it to manufacture slow requests.
    if _faults.should_drop("resilience.slow_solve"):
        time.sleep(0.05)
    if instance is None:
        instance_doc = payload.get("instance")
        if not isinstance(instance_doc, dict):
            raise ValidationError("request body needs 'instance' of type dict")
        instance = instance_from_dict(instance_doc)
    algorithm = payload.get("algorithm") or "phocus"
    _obs = _obs_probes.active()
    if _obs is not None:
        _obs.solve_requests.labels(algorithm=str(algorithm)).inc()
    tau = float(payload.get("tau") or 0.0)
    method = payload.get("sparsify_method") or "exact"
    certificate = bool(payload.get("certificate", False))
    seed = payload.get("seed")
    rng = np.random.default_rng(seed)

    solver_instance = instance
    sparsify_doc: Optional[Dict[str, Any]] = None
    if tau > 0.0:
        solver_instance, report = sparsify_instance(
            instance, tau, method=method, rng=rng
        )
        sparsify_doc = {
            "tau": report.tau,
            "method": report.method,
            "kept_fraction": report.kept_fraction,
            "checked_fraction": report.checked_fraction,
        }
    fidelity = payload.get("fidelity")
    if fidelity is not None:
        if payload.get("budgets"):
            raise ValidationError(
                "use the fidelity policy's own 'budgets' key for "
                "multi-fidelity sweeps, not the top-level 'budgets'"
            )
        with _trace.span("solve.fidelity") as sp:
            sp.annotate(n=instance.n, tau=tau)
            return _execute_fidelity(
                instance, solver_instance, sparsify_doc, fidelity
            )
    budgets = payload.get("budgets")
    if budgets:
        return _execute_sweep(
            instance,
            solver_instance,
            sparsify_doc,
            algorithm=algorithm,
            budgets=[float(b) for b in budgets],
            certificate=certificate,
            seed=seed,
            workers=payload.get("parallel_workers"),
        )

    # checkpoint_every is meaningless without somewhere to put the
    # snapshots — the synchronous /solve path has no sink, so drop it.
    # The hooks are also best-effort: for algorithms that cannot
    # checkpoint (exact / randomised baselines) they are ignored rather
    # than rejected, so one manager can run a mixed workload.
    if algorithm not in checkpointable_algorithms():
        checkpoint_sink = None
        resume_from = None
    checkpoint_every = (
        payload.get("checkpoint_every") if checkpoint_sink is not None else None
    )
    with _trace.span("solve.payload") as sp:
        sp.annotate(algorithm=str(algorithm), n=instance.n, tau=tau)
        if checkpoint_every is not None or checkpoint_sink is not None or resume_from is not None:
            solution = solve(
                solver_instance,
                algorithm,
                rng=rng,
                checkpoint_every=checkpoint_every,
                checkpoint_sink=checkpoint_sink,
                resume_from=resume_from,
            )
        else:
            solution = solve(solver_instance, algorithm, rng=rng)
    true_value = (
        solution.value
        if solver_instance is instance
        else score(instance, solution.selection)
    )
    solution.value = true_value
    if certificate:
        from repro.core.bounds import online_bound

        bound = online_bound(instance, solution.selection)
        solution.ratio_certificate = (
            1.0 if bound <= 0 else min(1.0, true_value / bound)
        )
    doc = solution_to_dict(solution)
    doc["sparsify"] = sparsify_doc
    return doc


def _execute_fidelity(
    instance,
    solver_instance,
    sparsify_doc: Optional[Dict[str, Any]],
    policy: Dict[str, Any],
) -> Dict[str, Any]:
    """Route a solve to the exclusive multi-fidelity solver.

    Mirrors the single-solve semantics: under ``tau > 0`` the solve runs
    on the sparsified instance but the reported ``value`` is re-scored on
    the original one (frontier sweeps keep their comparative values —
    both arms of every point ran on the same sparsified instance).
    """
    from repro.fidelity.policy import execute_fidelity_payload, resolve_catalog
    from repro.fidelity.solver import fidelity_score

    doc = execute_fidelity_payload(policy, instance=solver_instance)
    if solver_instance is not instance and doc.get("algorithm") == "fidelity":
        catalog = resolve_catalog(instance, policy)
        chosen = {
            int(rec["photo"]): int(catalog.indptr[rec["photo"]]) + int(rec["variant"])
            for rec in doc["chosen"]
        }
        doc["value"] = fidelity_score(instance, catalog, chosen)
    doc["sparsify"] = sparsify_doc
    return doc


def _execute_sweep(
    instance,
    solver_instance,
    sparsify_doc: Optional[Dict[str, Any]],
    *,
    algorithm: str,
    budgets: list,
    certificate: bool,
    seed: Optional[int],
    workers: Optional[int],
) -> Dict[str, Any]:
    """Run a budget sweep through :func:`solve_many`; one doc per budget.

    True-value scoring and certificates follow the single-solve semantics
    exactly: each member's ``value`` is re-scored on the original
    (unsparsified) instance, and its certificate bound is computed there
    under the member's budget.
    """
    from repro.core.parallel import SolveTask
    from repro.core.solver import solve_many

    tasks = [
        SolveTask(algorithm=algorithm, budget=b, seed=seed, label=f"budget={b:g}")
        for b in budgets
    ]
    solutions = solve_many(solver_instance, tasks, workers=workers)
    docs = []
    for budget, solution in zip(budgets, solutions):
        if solver_instance is not instance:
            solution.value = score(instance, solution.selection)
        if certificate:
            from repro.core.bounds import online_bound

            bound = online_bound(instance.with_budget(budget), solution.selection)
            solution.ratio_certificate = (
                1.0 if bound <= 0 else min(1.0, solution.value / bound)
            )
        docs.append(solution_to_dict(solution))
    return {
        "sweep": True,
        "algorithm": algorithm,
        "budgets": budgets,
        "parallel_workers": workers,
        "solutions": docs,
        "sparsify": sparsify_doc,
    }


def run_with_timeout(
    fn: Callable[[], Any],
    *,
    timeout: Optional[float] = None,
    cancel_event: Optional[threading.Event] = None,
    poll_interval: float = 0.02,
) -> Tuple[str, Any]:
    """Run ``fn`` in a nested daemon thread with timeout + cancel checkpoints.

    Returns one of ``("ok", value)``, ``("error", exception)``,
    ``("timeout", None)``, ``("cancelled", None)``.  On timeout or cancel
    the nested thread is abandoned, not killed — callers must treat its
    eventual result as void.
    """
    outcome: Dict[str, Any] = {}
    done = threading.Event()

    def _target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - captured for the caller
            outcome["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=_target, name="job-solve", daemon=True)
    thread.start()

    deadline = (threading.TIMEOUT_MAX if timeout is None else timeout) + _now()
    while True:
        if done.wait(timeout=poll_interval):
            if "error" in outcome:
                return "error", outcome["error"]
            return "ok", outcome.get("value")
        if cancel_event is not None and cancel_event.is_set():
            return "cancelled", None
        if timeout is not None and _now() >= deadline:
            return "timeout", None


def _now() -> float:
    import time

    return time.monotonic()


class WorkerPool:
    """A fixed pool of daemon threads draining a job queue.

    ``handler`` receives each dequeued item and must never raise (the
    manager's handler converts every failure into a job-record state).
    ``busy_count`` feeds the ``/stats`` worker-utilisation gauge.
    """

    def __init__(
        self,
        queue,
        handler: Callable[[Any], None],
        workers: int = 4,
        name_prefix: str = "phocus-job-worker",
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self._queue = queue
        self._handler = handler
        self._workers = workers
        self._name_prefix = name_prefix
        self._threads: list = []
        self._stop = threading.Event()
        self._busy = 0
        self._busy_lock = threading.Lock()

    @property
    def size(self) -> int:
        return self._workers

    @property
    def busy_count(self) -> int:
        with self._busy_lock:
            return self._busy

    @property
    def running(self) -> bool:
        return bool(self._threads) and not self._stop.is_set()

    def start(self) -> None:
        if self._threads:
            return
        self._stop.clear()
        for i in range(self._workers):
            t = threading.Thread(
                target=self._loop, name=f"{self._name_prefix}-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    def _loop(self) -> None:
        while not self._stop.is_set():
            item = self._queue.get(timeout=0.05)
            if item is None:
                continue
            obs = _obs_probes.active()
            with self._busy_lock:
                self._busy += 1
                if obs is not None:
                    obs.jobs_workers_busy.set(self._busy)
            try:
                self._handler(item)
            except Exception:  # noqa: BLE001 - workers must survive anything
                pass
            finally:
                with self._busy_lock:
                    self._busy -= 1
                    if obs is not None:
                        obs.jobs_workers_busy.set(self._busy)

    def stop(self, wait: bool = True, timeout: float = 5.0) -> None:
        self._stop.set()
        if wait:
            for t in self._threads:
                t.join(timeout=timeout)
        self._threads = []
