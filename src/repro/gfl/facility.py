"""Classic Facility Location: the uniform-weight special case of GFL.

Section 4.3 notes that when every GFL node weight equals 1 the problem is
exactly the Facility Location formulation used by Lindgren, Wu & Dimakis
[32] — ``k`` facilities to open (unit costs, cardinality budget), customers
served by their most similar open facility:

    maximise  F(S) = Σ_j max_{i ∈ S} sim(i, j)   s.t.  |S| ≤ k

This module provides the standalone problem (useful on its own and for
tests that check the GFL generalisation collapses correctly) plus the
standard greedy solver with its (1 − 1/e) guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.core.instance import (
    DenseSimilarity,
    PARInstance,
    Photo,
    PredefinedSubset,
)
from repro.errors import ValidationError

__all__ = ["FacilityLocationProblem", "greedy_facility_location", "facility_to_par"]


@dataclass
class FacilityLocationProblem:
    """Facility location over a similarity matrix.

    ``similarity[i, j]`` is the benefit of serving customer ``j`` from
    facility ``i``; both index the same ground set (photos serving photos,
    as in [32]).  ``k`` facilities may be opened.
    """

    similarity: np.ndarray
    k: int

    def __post_init__(self) -> None:
        self.similarity = np.asarray(self.similarity, dtype=np.float64)
        if self.similarity.ndim != 2 or self.similarity.shape[0] != self.similarity.shape[1]:
            raise ValidationError("similarity must be a square matrix")
        if self.k <= 0:
            raise ValidationError("k must be positive")

    @property
    def n(self) -> int:
        return self.similarity.shape[0]

    def value(self, selection: Iterable[int]) -> float:
        """``F(S) = Σ_j max_{i∈S} sim(i, j)`` (0 for an empty selection)."""
        sel = list(set(int(i) for i in selection))
        if not sel:
            return 0.0
        return float(self.similarity[sel].max(axis=0).sum())


def greedy_facility_location(
    problem: FacilityLocationProblem,
) -> Tuple[List[int], float]:
    """Lazy-free greedy for facility location; (1 − 1/e)-approximate.

    The cardinality constraint makes the plain greedy optimal-guarantee
    here [37]; we keep it simple (no priority queue) since this solver
    exists as a reference point, not a hot path.
    """
    n = problem.n
    best_serve = np.zeros(n, dtype=np.float64)
    chosen: List[int] = []
    remaining = set(range(n))
    for _ in range(min(problem.k, n)):
        best_i, best_gain = -1, 0.0
        for i in remaining:
            gain = float(np.maximum(problem.similarity[i] - best_serve, 0.0).sum())
            if gain > best_gain:
                best_i, best_gain = i, gain
        if best_i < 0:
            break
        chosen.append(best_i)
        best_serve = np.maximum(best_serve, problem.similarity[best_i])
        remaining.discard(best_i)
    return chosen, float(best_serve.sum())


def facility_to_par(problem: FacilityLocationProblem) -> PARInstance:
    """Embed facility location as a PAR instance (one subset, unit costs).

    The single pre-defined subset contains every photo with uniform
    relevance and weight ``n`` so that PAR's normalised score times the
    weight reproduces the raw facility-location value; the budget equals
    ``k`` with unit photo costs.  Tests use this embedding to check that
    PAR solvers generalise the facility-location special case.
    """
    n = problem.n
    sim = np.clip((problem.similarity + problem.similarity.T) / 2.0, 0.0, 1.0)
    np.fill_diagonal(sim, 1.0)
    photos = [Photo(photo_id=i, cost=1.0) for i in range(n)]
    subset = PredefinedSubset(
        subset_id="facility-location",
        weight=float(n),
        members=list(range(n)),
        relevance=[1.0 / n] * n,
        similarity=DenseSimilarity(sim),
    )
    return PARInstance(photos, [subset], budget=float(problem.k))
