"""Generalised Facility Location formulation of PAR (Section 4.3)."""

from repro.gfl.facility import (
    FacilityLocationProblem,
    facility_to_par,
    greedy_facility_location,
)
from repro.gfl.graph import GFLProblem, from_par, to_networkx

__all__ = [
    "GFLProblem",
    "from_par",
    "to_networkx",
    "FacilityLocationProblem",
    "greedy_facility_location",
    "facility_to_par",
]
