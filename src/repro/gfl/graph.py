"""The Generalised Facility Location (GFL) formulation of PAR (Section 4.3).

The paper proves its sparsification bound through an equivalent bipartite
view of the PAR objective:

* left nodes ``T_L = P`` (photos), each weighted by its cost ``C(p)``;
* right nodes ``T_R = {(q, p) | p ∈ q}`` (membership pairs), each weighted
  ``w_R(q, p) = W(q) · R(q, p)``;
* for every subset ``q`` and members ``p1, p2 ∈ q`` there are edges
  ``p1 → (q, p2)`` and ``p2 → (q, p1)`` of weight ``SIM(q, p1, p2)``
  (a single unit-weight loop edge when ``p1 = p2``);
* the objective of a left selection ``S`` is
  ``F(S) = Σ_{(q,p) ∈ T_R} max_{edge (s, (q,p)), s ∈ S} weight`` and must
  respect ``Σ_{p ∈ S} w_L(p) ≤ B``.

``F(S) = G(S)`` for every selection — the equivalence the Example 4.7
figure illustrates and our tests verify.  When all node weights are 1 the
structure degenerates to the classic Facility Location problem of
Lindgren et al. [32] (see :mod:`repro.gfl.facility`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import networkx as nx
import numpy as np

from repro.core.instance import PARInstance

__all__ = ["GFLProblem", "from_par", "to_networkx"]

RightNode = Tuple[str, int]  # (subset_id, photo_id)


@dataclass
class GFLProblem:
    """A Generalised Facility Location instance.

    Attributes
    ----------
    left_weights:
        ``w_L`` per photo id (the knapsack costs).
    right_nodes:
        The ``(subset_id, photo_id)`` membership pairs, in a fixed order.
    right_weights:
        ``w_R`` aligned with ``right_nodes``.
    edges:
        ``edges[r]`` holds the (photo id, weight) incidence list of right
        node ``r`` — every left node that can "serve" the pair, including
        the pair's own photo with weight 1.
    budget:
        Upper bound on the selected left weight.
    """

    left_weights: np.ndarray
    right_nodes: List[RightNode]
    right_weights: np.ndarray
    edges: List[List[Tuple[int, float]]]
    budget: float

    @property
    def n_left(self) -> int:
        return self.left_weights.size

    @property
    def n_right(self) -> int:
        return len(self.right_nodes)

    @property
    def total_right_weight(self) -> float:
        """``W_R`` of Theorem 4.8."""
        return float(self.right_weights.sum())

    def selection_cost(self, selection: Iterable[int]) -> float:
        ids = list(selection)
        return float(self.left_weights[ids].sum()) if ids else 0.0

    def value(self, selection: Iterable[int]) -> float:
        """``F(S)``: best-edge weight summed (weighted) over right nodes."""
        sel = set(int(p) for p in selection)
        total = 0.0
        for r, incidence in enumerate(self.edges):
            best = 0.0
            for photo_id, weight in incidence:
                if photo_id in sel and weight > best:
                    best = weight
            total += float(self.right_weights[r]) * best
        return total

    def sparsified(self, tau: float) -> "GFLProblem":
        """Drop edges of weight below τ (self/loop edges always survive)."""
        new_edges: List[List[Tuple[int, float]]] = []
        for r, incidence in enumerate(self.edges):
            _, own_photo = self.right_nodes[r]
            kept = [
                (p, w)
                for p, w in incidence
                if w >= tau or p == own_photo
            ]
            new_edges.append(kept)
        return GFLProblem(
            left_weights=self.left_weights,
            right_nodes=self.right_nodes,
            right_weights=self.right_weights,
            edges=new_edges,
            budget=self.budget,
        )

    def neighbors_tau(self, selection: Iterable[int], tau: float) -> List[int]:
        """Right nodes adjacent to ``S`` through an edge of weight ≥ τ.

        This is the ``N_τ(S)`` of Theorem 4.8.
        """
        sel = set(int(p) for p in selection)
        out = []
        for r, incidence in enumerate(self.edges):
            if any(p in sel and w >= tau for p, w in incidence):
                out.append(r)
        return out


def from_par(instance: PARInstance) -> GFLProblem:
    """Build the GFL formulation of a PAR instance (Section 4.3).

    The conversion is score-preserving: ``GFLProblem.value(S)`` equals
    ``repro.core.objective.score(instance, S)`` for every selection ``S``.
    """
    right_nodes: List[RightNode] = []
    right_weights: List[float] = []
    edges: List[List[Tuple[int, float]]] = []
    for subset in instance.subsets:
        wrel = subset.weight * subset.relevance
        for local, photo_id in enumerate(subset.members):
            right_nodes.append((subset.subset_id, int(photo_id)))
            right_weights.append(float(wrel[local]))
            idx, sims = subset.similarity.neighbors(local)
            incidence = [
                (int(subset.members[j]), float(s)) for j, s in zip(idx, sims)
            ]
            edges.append(incidence)
    return GFLProblem(
        left_weights=instance.costs.copy(),
        right_nodes=right_nodes,
        right_weights=np.asarray(right_weights, dtype=np.float64),
        edges=edges,
        budget=instance.budget,
    )


def to_networkx(problem: GFLProblem) -> nx.Graph:
    """Materialise the bipartite graph (Figure 2) as a networkx graph.

    Left nodes are ``("L", photo_id)`` with a ``weight`` attribute (cost);
    right nodes are ``("R", subset_id, photo_id)`` with their ``w_R``; edges
    carry the similarity ``weight``.  Useful for visualisation and for
    structural assertions in tests.
    """
    graph = nx.Graph()
    for photo_id, w in enumerate(problem.left_weights):
        graph.add_node(("L", photo_id), bipartite=0, weight=float(w))
    for r, (subset_id, photo_id) in enumerate(problem.right_nodes):
        node = ("R", subset_id, photo_id)
        graph.add_node(node, bipartite=1, weight=float(problem.right_weights[r]))
        for left_photo, weight in problem.edges[r]:
            graph.add_edge(("L", left_photo), node, weight=weight)
    return graph
