"""Personal photo cleanup: free space on your phone without losing memories.

Run with::

    python examples/personal_photo_cleanup.py

The paper's second motivating scenario (Section 1): delete photos locally
to meet a storage budget, relying on the cloud for the full collection.
This example exercises the *image substrate* end to end — photos are
actually rendered (synthetic scenes), embedded, quality-scored and sized;
albums come from automatic EXIF/date tagging (Section 5.1 input mode 3);
the passport scan is pinned by a retention policy.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from repro.core.instance import Photo
from repro.images.embedder import PhotoEmbedder
from repro.images.exif import synthesize_event_exif
from repro.images.filesize import file_size_bytes
from repro.images.quality import quality_score
from repro.images.synthetic import random_prototype, render_cluster
from repro.storage.policy import derive_retained, metadata_flag_policy
from repro.system.phocus import DataRepresentationModule, PHOcus, PhocusConfig

MB = 1_000_000.0

EVENTS = [
    ("paris-trip", 14, datetime(2023, 6, 10, tzinfo=timezone.utc)),
    ("beach-weekend", 10, datetime(2023, 7, 22, tzinfo=timezone.utc)),
    ("birthday-party", 8, datetime(2023, 9, 2, tzinfo=timezone.utc)),
    ("hiking-day", 8, datetime(2023, 10, 14, tzinfo=timezone.utc)),
]


def main() -> None:
    rng = np.random.default_rng(12)
    embedder = PhotoEmbedder(out_dim=48, seed=1)

    print("Shooting the photo collection (rendered synthetic scenes) ...")
    photos, images = [], []
    for event_name, n_shots, when in EVENTS:
        prototype = random_prototype(event_name, rng)
        shots = render_cluster(prototype, n_shots, rng, blur_fraction=0.25)
        exif = synthesize_event_exif(n_shots, rng, base_time=when, spread_km=1.0)
        for image, record in zip(shots, exif):
            photo_id = len(photos)
            photos.append(
                Photo(
                    photo_id=photo_id,
                    cost=file_size_bytes(image),
                    label=f"{event_name}-{photo_id}.jpg",
                    metadata={
                        "labels": [event_name],
                        "exif": record.as_dict(),
                        "quality": quality_score(image),
                    },
                )
            )
            images.append(image)

    # One important document photo that must never leave the device.
    doc_proto = random_prototype("passport", rng)
    doc_image = render_cluster(doc_proto, 1, rng, blur_fraction=0.0)[0]
    photos.append(
        Photo(
            photo_id=len(photos),
            cost=file_size_bytes(doc_image),
            label="passport.jpg",
            metadata={"labels": ["documents"], "must_keep": True,
                      "quality": quality_score(doc_image)},
        )
    )
    images.append(doc_image)

    embeddings = embedder.embed_batch(images)
    total = sum(p.cost for p in photos)
    print(f"  {len(photos)} photos, {total / MB:.1f} MB on device")

    # S0 via the policy engine (the paper's personal must-keeps).
    retained = derive_retained(photos, [metadata_flag_policy("must_keep")])
    print(f"  pinned by policy: {[photos[p].label for p in retained]}")

    # Automatic tagging (input mode 3): event labels + EXIF day buckets.
    budget = total * 0.35
    module = DataRepresentationModule()
    instance = module.from_metadata(
        photos, embeddings, budget=budget, retained=retained
    )
    print(f"  auto-derived albums: {[q.subset_id for q in instance.subsets]}")

    print(f"\nFreeing space down to {budget / MB:.1f} MB ({0.35:.0%} of current) ...")
    report = PHOcus(PhocusConfig(certificate=True)).run(instance)
    keep = set(report.solution.selection)

    print(f"  keep {len(keep)} photos, upload {len(photos) - len(keep)} to the cloud")
    print(f"  G(S) = {report.solution.value:.3f}, certified >= "
          f"{report.solution.ratio_certificate:.1%} of optimal")
    for event_name, _, _ in EVENTS:
        event_ids = [p.photo_id for p in photos if event_name in p.metadata["labels"]]
        kept_ids = [p for p in event_ids if p in keep]
        avg_q = np.mean([photos[p].metadata["quality"] for p in kept_ids]) if kept_ids else 0
        print(f"  {event_name:<16}: kept {len(kept_ids)}/{len(event_ids)} "
              f"(mean quality of keepers {avg_q:.2f})")
    assert retained[0] in keep, "policy pin must survive"
    print("  passport.jpg stays on the device, as required.")

    # Visual artefact: contact sheets of the keepers and the archived shots.
    from pathlib import Path

    from repro.images.ppm import contact_sheet, write_ppm

    out_dir = Path("examples/output")
    kept_images = [images[p] for p in sorted(keep)]
    archived_images = [
        images[p] for p in range(len(photos)) if p not in keep
    ]
    write_ppm(contact_sheet(kept_images, columns=8), out_dir / "kept.ppm")
    write_ppm(contact_sheet(archived_images, columns=8), out_dir / "archived.ppm")
    print(f"  contact sheets written to {out_dir}/kept.ppm and archived.ppm")


if __name__ == "__main__":
    main()
