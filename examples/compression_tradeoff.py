"""Compression trade-off: keep fewer originals, or more degraded copies?

Run with::

    python examples/compression_tradeoff.py

Explores the paper's Section 6 future-work idea with the
:mod:`repro.extensions.compression` extension: at each budget, compare
remove-only archiving against archiving that may keep a compressed
rendition (85% fidelity at 45% of the bytes) instead of the full photo,
and watch the solver's keep/compress/archive mix shift with the budget.
"""

from __future__ import annotations

from repro.core.solver import solve
from repro.datasets.public import generate_public_dataset
from repro.extensions.compression import (
    expand_with_compression,
    selection_summary,
)

LEVELS = ((0.85, 0.45),)


def main() -> None:
    dataset = generate_public_dataset(200, 35, name="compress-demo", seed=21)
    corpus = dataset.total_cost()
    print(
        f"dataset: {dataset.n_photos} photos, {dataset.n_subsets} subsets, "
        f"{corpus / 1e6:.0f} MB"
    )
    print(f"compression level: fidelity {LEVELS[0][0]:.0%} at {LEVELS[0][1]:.0%} bytes\n")
    header = (
        f"{'budget':>8} {'remove-only':>12} {'w/ compress':>12} {'gain':>7}   "
        f"{'originals':>9} {'compressed':>10}"
    )
    print(header)
    print("-" * len(header))
    for fraction in (0.05, 0.1, 0.2, 0.4, 0.7):
        inst = dataset.instance(corpus * fraction)
        remove_only = solve(inst, "phocus")
        expanded, variants = expand_with_compression(inst, LEVELS)
        compressed = solve(expanded, "phocus")
        summary = selection_summary(compressed.selection, variants)
        gain = compressed.value / remove_only.value - 1.0
        print(
            f"{fraction:>7.0%} {remove_only.value:>12.3f} {compressed.value:>12.3f} "
            f"{gain:>6.1%}   {summary['kept_original']:>9} "
            f"{summary['kept_compressed']:>10}"
        )
    print(
        "\nShape: at tight budgets nearly everything kept is compressed (more"
        "\ncoverage per byte); as the budget loosens, full-quality originals"
        "\ntake over and the compression advantage fades."
    )


if __name__ == "__main__":
    main()
