"""E-commerce landing pages: the paper's motivating XYZ scenario, end to end.

Run with::

    python examples/ecommerce_landing_pages.py

Builds a synthetic Electronics catalogue with a Zipf query log, derives
landing-page subsets through the BM25 search engine (Section 5.1 input
mode 2), pins contract-brand imagery via the retention-policy engine,
solves PAR with LSH sparsification, and finally replays a page-visit
workload against the tiered storage simulator to show the operational
payoff (hit rates and the 100 ms page-load SLA of Section 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.solver import solve
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.storage.policy import brand_contract_policy, derive_retained
from repro.storage.workload import replay_page_workload
from repro.system.phocus import PHOcus, PhocusConfig

MB = 1_000_000.0


def main() -> None:
    print("Generating the Electronics catalogue + query log ...")
    dataset = generate_ecommerce_dataset(
        "Electronics", n_products=250, n_queries=40, seed=4
    )
    print(
        f"  {dataset.n_photos} photos across {dataset.extras['n_products']} products, "
        f"{dataset.n_subsets} landing pages, {dataset.total_cost_mb():.0f} MB total"
    )
    head = dataset.extras["query_log"][:5]
    print("  top queries:", ", ".join(f"{q!r} ({c} visits)" for q, c in head))

    # Retention policy: the generator marked some brands as contracted;
    # the policy engine derives S0 from photo metadata the same way a
    # compliance pass would.
    contract = dataset.extras["contract_brands"]
    pinned = derive_retained(dataset.photos, [brand_contract_policy(contract)])
    print(f"  contract brands {contract} pin {len(pinned)} photos "
          f"(generator pre-pinned {len(dataset.retained)})")

    # The paper's practical regime: a budget well below the corpus size.
    budget = dataset.total_cost() * 0.08
    instance = dataset.instance(budget)
    print(f"\nSolving with an {budget / MB:.0f} MB cache budget (8% of corpus) ...")

    report = PHOcus(
        PhocusConfig(tau=0.6, sparsify_method="lsh", certificate=True, seed=0)
    ).run(instance)
    sol = report.solution
    print(f"  kept {report.retained_count} photos / archived {report.archived_count}")
    print(f"  G(S) = {sol.value:.3f}; certified >= {sol.ratio_certificate:.1%} of optimal")
    print(f"  sparsification kept {report.sparsify.kept_fraction:.1%} of similarity "
          f"entries, compared {report.sparsify.checked_fraction:.1%} of pairs (LSH)")
    print("  least-covered landing pages:")
    for page, value in report.worst_covered_subsets[:3]:
        print(f"    {page!r}: {value:.4f}")

    # Operational check: replay weighted page visits against a two-tier
    # store with the PHOcus selection pinned hot.
    print("\nReplaying 1000 weighted page visits against the tiered store ...")
    for label, selection in (
        ("PHOcus", sol.selection),
        ("random", solve(instance, "rand-a", rng=np.random.default_rng(0)).selection),
    ):
        ops = replay_page_workload(
            instance, selection, n_visits=1000, photos_per_page=6,
            deadline_ms=100.0, rng=np.random.default_rng(7),
        )
        print(
            f"  {label:>7}: byte hit rate {ops.byte_hit_rate:5.1%}, "
            f"mean page load {ops.mean_page_load_ms:6.1f} ms, "
            f"within 100ms SLA {ops.deadline_met_fraction:5.1%}"
        )


if __name__ == "__main__":
    main()
