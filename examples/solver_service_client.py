"""Driving the PHOcus solver service over HTTP.

Run with::

    python examples/solver_service_client.py

Starts an embedded solver service (the paper's Flask-style deployment,
rebuilt on the standard library), then acts as a remote client: checks
health, lists algorithms, ships a serialised instance to ``/solve`` with
sparsification enabled, and scores a hand-picked selection via
``/score`` — the workflow a UI or batch pipeline would use.
"""

from __future__ import annotations

import json
import urllib.request

from repro.core.paper_example import figure1_instance
from repro.core.serialize import instance_to_dict
from repro.datasets.public import generate_public_dataset
from repro.system.service import PhocusService


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}") as resp:
        return json.loads(resp.read())


def _post(base: str, path: str, payload: dict):
    req = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def main() -> None:
    with PhocusService() as service:
        base = f"http://{service.address}"
        print(f"service up at {base}")

        health = _get(base, "/health")
        print(f"health: {health}")
        algorithms = _get(base, "/algorithms")["algorithms"]
        print(f"algorithms: {', '.join(algorithms)}\n")

        # 1. The paper's Figure 1 example over the wire.
        fig1 = figure1_instance(4.0)
        result = _post(
            base, "/solve",
            {"instance": instance_to_dict(fig1), "certificate": True},
        )
        print("Figure 1 via /solve:")
        print(f"  selection {result['selection']}, value {result['value']:.3f}, "
              f"certified >= {result['ratio_certificate']:.1%}")

        # 2. A generated dataset with server-side LSH sparsification.
        dataset = generate_public_dataset(120, 20, seed=5)
        inst = dataset.instance(dataset.total_cost() * 0.15)
        result = _post(
            base, "/solve",
            {
                "instance": instance_to_dict(inst),
                "tau": 0.6,
                "sparsify_method": "lsh",
                "seed": 0,
                "certificate": True,
            },
        )
        print("\ngenerated dataset via /solve (tau=0.6, LSH):")
        print(f"  kept {len(result['selection'])} of {inst.n} photos, "
              f"value {result['value']:.3f}")
        print(f"  sparsify: {result['sparsify']}")

        # 3. Scoring an ad-hoc selection.
        manual_pick = sorted(result["selection"])[: len(result["selection"]) // 2]
        scored = _post(
            base, "/score", {"instance": instance_to_dict(inst), "selection": manual_pick}
        )
        print(f"\nscoring half of that selection via /score: value "
              f"{scored['value']:.3f} (feasible: {scored['feasible']})")
    print("\nservice stopped.")


if __name__ == "__main__":
    main()
