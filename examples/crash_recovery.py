"""Crash recovery: checkpointed solves surviving deterministic faults.

Run with::

    python examples/crash_recovery.py

Demonstrates the crash-safety layer end to end:

1. a lazy-greedy solve that checkpoints every few picks to a
   crash-safe file, is killed mid-run by the fault-injection harness,
   and is resumed with :func:`repro.core.checkpoint.resume_from_checkpoint`
   to the *exact* selection of an uninterrupted run;
2. the same story one layer up: a background job whose worker dies
   mid-solve, replayed by a fresh :class:`repro.jobs.JobManager` on the
   same journal and resumed from its last persisted checkpoint.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro import faults
from repro.core.checkpoint import FileCheckpointSink, resume_from_checkpoint
from repro.core.serialize import instance_to_dict
from repro.core.solver import solve
from repro.datasets.public import generate_public_dataset
from repro.faults.plan import FaultPlan, ProcessKilled
from repro.jobs import JobManager

WORKDIR = Path(tempfile.mkdtemp(prefix="phocus-crash-demo-"))


def solver_level_demo() -> None:
    print("=" * 70)
    print("1. Checkpointed solve killed mid-run, resumed bit-identically")
    print("=" * 70)
    dataset = generate_public_dataset(80, 12, seed=7)
    instance = dataset.instance(dataset.total_cost() * 0.4)

    reference = solve(instance, "phocus")
    print(f"uninterrupted: {len(reference.selection)} photos, "
          f"G(S) = {reference.value:.4f}")

    sink = FileCheckpointSink(WORKDIR / "solve.ckpt")
    plan = FaultPlan(seed=1).on("solver.iteration", "kill", nth=250)
    try:
        with faults.armed(plan):
            solve(instance, "phocus", checkpoint_every=5, checkpoint_sink=sink)
    except ProcessKilled as exc:
        print(f"killed mid-solve: {exc}")

    doc = sink.load()
    progress = doc.get("progress", {})
    print(f"last checkpoint: phase {progress.get('phase')}, "
          f"{progress.get('picks')} picks already made")

    resumed = resume_from_checkpoint(instance, sink.path)
    same = sorted(resumed.selection) == reference.selection
    print(f"resumed solve:  {len(resumed.selection)} photos "
          f"(skipped {resumed.resumed_at} picks) -> "
          f"selection identical to uninterrupted run: {same}")
    assert same


def job_level_demo() -> None:
    print()
    print("=" * 70)
    print("2. Worker killed mid-job; new manager resumes from the journal")
    print("=" * 70)
    dataset = generate_public_dataset(80, 12, seed=11)
    instance = dataset.instance(dataset.total_cost() * 0.4)
    doc = instance_to_dict(instance)
    journal = str(WORKDIR / "jobs.jsonl")

    with JobManager(workers=1) as ref_mgr:
        ref_id = ref_mgr.submit_solve(doc, job_id="reference")
        ref_mgr.wait(ref_id, timeout=120)
        reference = ref_mgr.result(ref_id)
    print(f"uninterrupted job: G(S) = {reference['value']:.4f}, "
          f"{reference['extras']['picks']} picks")

    # Silence the traceback the deliberately-killed worker thread prints.
    previous_hook = threading.excepthook
    threading.excepthook = lambda args: (
        None if issubclass(args.exc_type, ProcessKilled) else previous_hook(args)
    )
    plan = FaultPlan(seed=2).on("solver.iteration", "kill", nth=250)
    try:
        with faults.armed(plan):
            crashed = JobManager(
                workers=1, journal_path=journal, default_checkpoint_every=3
            )
            job_id = crashed.submit_solve(doc, job_id="archive-job")
            while not plan.fired("solver.iteration"):
                time.sleep(0.02)
            time.sleep(0.3)
            status = crashed.status(job_id)
            print(f"worker killed; journal still says {status['state']} "
                  f"with progress {status['checkpoint_progress']}")
            crashed._store.close()  # process death: no clean shutdown
    finally:
        threading.excepthook = previous_hook

    recovered = JobManager(workers=1, journal_path=journal, default_checkpoint_every=3)
    try:
        final = recovered.wait(job_id, timeout=120)
        result = recovered.result(job_id)
    finally:
        recovered.shutdown()
    extras = result["extras"]
    print(f"recovered job: state {final['state']}, G(S) = {result['value']:.4f}, "
          f"resumed from pick {extras['resumed_from_picks']}")
    assert result["selection"] == reference["selection"]
    assert result["value"] == reference["value"]
    print("selection and objective identical to the uninterrupted job: True")


def main() -> None:
    solver_level_demo()
    job_level_demo()
    print()
    print(f"(scratch files under {WORKDIR})")


if __name__ == "__main__":
    main()
