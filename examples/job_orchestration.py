"""Background job orchestration: queued async solves over HTTP.

Run with::

    python examples/job_orchestration.py

Starts an ephemeral PHOcus service (4 background workers) and plays a
multi-tenant archive scenario against it: three tenants submit solve
jobs to ``POST /jobs``, a client polls ``GET /jobs/<id>`` until each job
finishes, and ``GET /stats`` reports queue depth, per-state counts and
solve-latency percentiles — the deployment shape of a production photo
archive, where solves are background work rather than blocking requests.
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.core.serialize import instance_to_dict
from repro.datasets.public import generate_public_dataset
from repro.system.service import PhocusService


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}") as resp:
        return json.loads(resp.read())


def _post(base: str, path: str, payload: dict):
    req = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def main() -> None:
    tenants = ["alice", "bob", "carol"]
    with PhocusService(workers=4, queue_depth=64) as service:
        base = f"http://{service.address}"
        print(f"service up at {base} with 4 background solve workers\n")

        # Each tenant archives their own small collection.
        job_ids = []
        for i, tenant in enumerate(tenants):
            dataset = generate_public_dataset(
                name=f"{tenant}-photos", n_photos=40, n_subsets=6, seed=i
            )
            instance = dataset.instance(dataset.total_cost() * 0.3)
            submitted = _post(
                base,
                "/jobs",
                {
                    "instance": instance_to_dict(instance),
                    "tenant": tenant,
                    "certificate": True,
                },
            )
            print(f"{tenant:>6}: submitted job {submitted['job_id']}")
            job_ids.append((tenant, submitted["job_id"]))

        # Poll until every job reaches a terminal state.
        print("\npolling:")
        for tenant, job_id in job_ids:
            while True:
                doc = _get(base, f"/jobs/{job_id}")
                if doc["state"] in ("SUCCEEDED", "FAILED", "CANCELLED"):
                    break
                time.sleep(0.05)
            result = doc["result"]
            print(
                f"{tenant:>6}: {doc['state']} — kept {len(result['selection'])} photos, "
                f"G(S)={result['value']:.3f}, "
                f"certificate >= {result['ratio_certificate']:.3f}, "
                f"solve {doc['solve_seconds'] * 1000:.0f} ms"
            )

        stats = _get(base, "/stats")
        print("\nservice stats:")
        print(f"  jobs by state : {stats['jobs']}")
        print(f"  queue depth   : {stats['queue']['depth']}")
        latency = stats["solve_latency_seconds"]
        print(
            f"  solve latency : p50={latency['p50'] * 1000:.0f} ms "
            f"p99={latency['p99'] * 1000:.0f} ms over {latency['count']} solves"
        )


if __name__ == "__main__":
    main()
