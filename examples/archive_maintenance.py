"""Quarterly archive maintenance: living with a drifting query log.

Run with::

    python examples/archive_maintenance.py

The paper's EC datasets come from a *quarter's* query log (Section 5.2) —
real deployments re-derive the landing pages every quarter as shopping
interests drift, and occasionally gain or lose cache capacity.  This
example simulates four quarters of such drift and compares two operating
modes:

* **cold** — re-solve from scratch every quarter;
* **warm** — adapt last quarter's selection with
  :func:`repro.extensions.incremental.maintain`.

Watch the quality track the cold solve while the churn (photos moved in
or out of the cache each quarter) stays small — the operational win of
incremental maintenance.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.instance import PARInstance
from repro.core.solver import solve
from repro.datasets.ecommerce import generate_ecommerce_dataset
from repro.extensions.incremental import maintain


def drifted_instance(dataset, budget: float, quarter: int, rng) -> PARInstance:
    """This quarter's instance: same photos, drifted subset weights.

    Query popularity drifts multiplicatively quarter over quarter
    (log-normal shocks), re-ranking the landing pages the way a real
    query log would.
    """
    from repro.core.instance import PredefinedSubset

    base = dataset.instance(budget)
    drifted = []
    for q in base.subsets:
        shock = float(rng.lognormal(mean=0.0, sigma=0.35))
        drifted.append(
            PredefinedSubset(
                q.subset_id, q.weight * shock, q.members, q.relevance,
                q.similarity, normalize=False,
            )
        )
    return base.with_subsets(drifted)


def main() -> None:
    rng = np.random.default_rng(42)
    dataset = generate_ecommerce_dataset("Fashion", 220, n_queries=35, seed=8)
    budget = dataset.total_cost() * 0.12
    print(
        f"dataset: {dataset.n_photos} photos, {dataset.n_subsets} landing pages; "
        f"budget {budget / 1e6:.0f} MB\n"
    )

    header = (
        f"{'quarter':>8} {'warm value':>11} {'cold value':>11} {'kept':>7} "
        f"{'churn':>6} {'warm s':>8} {'cold s':>8}"
    )
    print(header)
    print("-" * len(header))

    previous = None
    for quarter in range(1, 5):
        inst = drifted_instance(dataset, budget, quarter, rng)
        # Capacity event in Q3: the cache loses 25%.
        if quarter == 3:
            inst = inst.with_budget(budget * 0.75)

        start = time.perf_counter()
        cold = solve(inst, "phocus")
        cold_s = time.perf_counter() - start

        if previous is None:
            previous = cold.selection
            print(f"{'Q1':>8} {'—':>11} {cold.value:>11.4f} {'—':>7} {'—':>6} "
                  f"{'—':>8} {cold_s:>8.2f}   (initial cold solve)")
            continue

        start = time.perf_counter()
        warm = maintain(inst, previous)
        warm_s = time.perf_counter() - start
        churn = len(warm.evicted) + len(warm.added)
        kept = warm.value / cold.value if cold.value > 0 else 1.0
        print(
            f"{'Q' + str(quarter):>8} {warm.value:>11.4f} {cold.value:>11.4f} "
            f"{kept:>6.1%} {churn:>6} {warm_s:>8.2f} {cold_s:>8.2f}"
        )
        previous = warm.selection

    print(
        "\nShape: warm maintenance stays within a few percent of the cold"
        "\nre-solve each quarter while touching only the changed margin of"
        "\nthe cache (small churn), including through the Q3 capacity cut."
    )


if __name__ == "__main__":
    main()
