"""Observability: metrics, traces, and Prometheus exposition end to end.

Run with::

    python examples/observability.py

Walks the full :mod:`repro.obs` surface: arm the process instruments,
run a library solve and watch the solver counters land in the registry,
inspect recently completed trace spans, then start an ephemeral
:class:`PhocusService` (metrics on, as per default), submit a background
job, and scrape ``GET /metrics`` the way a Prometheus agent would —
asserting the solver, jobs, and HTTP series are all present in valid
text-exposition format.
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.core.greedy import main_algorithm
from repro.core.serialize import instance_to_dict
from repro.datasets.public import generate_public_dataset
from repro.obs import probes, recent_spans, span
from repro.obs.prom import CONTENT_TYPE
from repro.system.service import PhocusService


def _get(base: str, path: str):
    with urllib.request.urlopen(f"{base}{path}") as resp:
        return json.loads(resp.read())


def _post(base: str, path: str, payload: dict):
    req = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def main() -> None:
    dataset = generate_public_dataset(
        name="obs-demo", n_photos=60, n_subsets=8, seed=7
    )
    instance = dataset.instance(dataset.total_cost() * 0.3)

    # --- 1. Library-level: arm, solve, read the counters back. ---------
    probes.disarm()  # start from a clean slate for reproducible numbers
    instruments = probes.arm()
    with span("example.solve") as sp:
        run = main_algorithm(instance)
        sp.annotate(picks=len(run.selection))
    print("solver telemetry after one main_algorithm run:")
    snap = instruments.registry.snapshot()
    for family in snap:
        if family.name.startswith("phocus_solver_") and family.type == "counter":
            for series in family.series:
                labels = ",".join(f"{k}={v}" for k, v in series.labels)
                print(f"  {family.name}{{{labels}}} = {series.value:g}")
    ratio = instruments.registry.get_sample(
        "phocus_solver_lazy_reeval_ratio", {"mode": "UC"}
    )
    assert ratio is not None and 0.0 <= ratio <= 1.0, ratio
    print(f"  UC lazy re-evaluation ratio: {ratio:.2f}")

    spans = recent_spans()
    assert any(s.name == "example.solve" for s in spans)
    print(f"  {len(spans)} span(s) in the trace ring, newest: "
          f"{spans[-1].name} ({spans[-1].duration_s * 1000:.1f} ms)")

    # --- 2. Service-level: job + scrape, like a Prometheus agent. ------
    with PhocusService(workers=2) as service:
        base = f"http://{service.address}"
        print(f"\nservice up at {base} (metrics enabled by default)")

        submitted = _post(
            base,
            "/jobs",
            {"instance": instance_to_dict(instance), "tenant": "obs-demo"},
        )
        job_id = submitted["job_id"]
        while True:
            doc = _get(base, f"/jobs/{job_id}")
            if doc["state"] in ("SUCCEEDED", "FAILED", "CANCELLED"):
                break
            time.sleep(0.05)
        assert doc["state"] == "SUCCEEDED", doc
        print(f"job {job_id}: {doc['state']}")

        with urllib.request.urlopen(f"{base}/metrics") as resp:
            content_type = resp.headers.get("Content-Type")
            body = resp.read().decode("utf-8")
        assert content_type == CONTENT_TYPE, content_type

        required = (
            "phocus_solver_runs_total",
            "phocus_jobs_completed_total",
            "phocus_jobs_queue_depth",
            "phocus_http_requests_total",
        )
        for series in required:
            assert series in body, f"missing {series} in /metrics"
        print(f"\nGET /metrics ({content_type}): "
              f"{len(body.splitlines())} lines, all required series present")
        print("sample of the exposition:")
        for line in body.splitlines():
            if line.startswith(("phocus_jobs_completed_total", "phocus_http_requests_total")):
                print(f"  {line}")

        stats = _get(base, "/stats")
        print(f"\nfailure classification via /stats: {stats['failures']}")
    probes.disarm()


if __name__ == "__main__":
    main()
