"""Scalability sweep: dataset size vs solve time, with and without LSH.

Run with::

    python examples/scalability_sweep.py [--paper-scale]

Reproduces the *shape* of the paper's efficiency story (Figures 5e/5f):
as instances grow, τ-sparsification (optionally via SimHash LSH) cuts the
similarity structure the solver traverses while the online bound
certifies the solution quality stays high.  By default runs laptop-sized
steps; ``--paper-scale`` uses the real Table 2 sizes (slow!).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core.bounds import performance_certificate
from repro.core.objective import score
from repro.core.solver import solve
from repro.datasets.registry import load
from repro.sparsify.pipeline import sparsify_instance

MB = 1_000_000.0
TAU = 0.55


def run_step(name: str, scale: float, seed: int = 3) -> None:
    dataset = load(name, scale=scale, seed=seed)
    instance = dataset.instance(dataset.total_cost() * 0.1)

    start = time.perf_counter()
    dense_sol = solve(instance, "phocus")
    dense_s = time.perf_counter() - start

    start = time.perf_counter()
    sparse_inst, report = sparsify_instance(
        instance, TAU, method="lsh", rng=np.random.default_rng(0)
    )
    sparse_sol = solve(sparse_inst, "phocus")
    sparse_s = time.perf_counter() - start
    sparse_true = score(instance, sparse_sol.selection)

    _, ratio = performance_certificate(instance, sparse_sol.selection)
    print(
        f"{dataset.name:<10} n={dataset.n_photos:<6} |Q|={dataset.n_subsets:<5} "
        f"dense {dense_s:6.2f}s | lsh {sparse_s:6.2f}s "
        f"(pairs compared {report.checked_fraction:5.1%}, "
        f"quality kept {sparse_true / dense_sol.value:6.1%}, "
        f"certified >= {ratio:.2f})"
    )


def main() -> None:
    paper_scale = "--paper-scale" in sys.argv
    print(f"tau = {TAU}, budget = 10% of each corpus, LSH sparsification")
    print("-" * 100)
    if paper_scale:
        steps = [("P-1K", 1.0), ("P-5K", 1.0), ("P-10K", 1.0), ("P-50K", 1.0)]
    else:
        steps = [("P-1K", 0.1), ("P-1K", 0.4), ("P-1K", 1.0), ("P-5K", 0.4)]
    for name, scale in steps:
        run_step(name, scale)
    print("-" * 100)
    print("Shape to observe: LSH compares a shrinking fraction of pairs as n")
    print("grows, while the certified quality stays far above the worst case.")


if __name__ == "__main__":
    main()
