"""Quickstart: solve the paper's running example and a tiny custom instance.

Run with::

    python examples/quickstart.py

Walks through (1) the Figure 1 instance shipped with the library, with
the Figure 3 greedy trace; (2) building your own PAR instance from
scratch; and (3) comparing against the exact optimum and reading the
approximation certificate.
"""

from __future__ import annotations

import numpy as np

from repro import PARInstance, Photo, SubsetSpec, figure1_instance, solve
from repro.core import CoverageState, lazy_greedy, UC

MB = 1_000_000.0


def paper_example() -> None:
    print("=" * 70)
    print("1. The paper's Figure 1 example (7 photos, 4 subsets, 4 Mb budget)")
    print("=" * 70)
    instance = figure1_instance(budget_mb=4.0)

    # Initial marginal gains — these match Figure 3's Step 1 exactly.
    state = CoverageState(instance)
    gains = {f"p{p + 1}": round(state.gain(p), 2) for p in range(instance.n)}
    print(f"initial marginal gains: {gains}")

    run = lazy_greedy(instance, UC)
    print("Algorithm 2 (UC) picks:", [f"p{p + 1}" for p, _ in run.picks])

    solution = solve(instance, "phocus", certificate=True)
    print(f"PHOcus value {solution.value:.3f} using {solution.cost / MB:.1f} of 4.0 Mb")
    print(f"certified to be >= {solution.ratio_certificate:.1%} of optimal")

    exact = solve(instance, "bruteforce")
    print(f"exact optimum {exact.value:.3f} -> PHOcus is "
          f"{solution.value / exact.value:.1%} of optimal here\n")


def custom_instance() -> None:
    print("=" * 70)
    print("2. Building your own instance")
    print("=" * 70)
    # Six photos with byte costs; two overlapping albums.
    photos = [
        Photo(photo_id=0, cost=1.1 * MB, label="eiffel-wide.jpg"),
        Photo(photo_id=1, cost=1.0 * MB, label="eiffel-closeup.jpg"),
        Photo(photo_id=2, cost=2.3 * MB, label="louvre.jpg"),
        Photo(photo_id=3, cost=0.8 * MB, label="seine-sunset.jpg"),
        Photo(photo_id=4, cost=1.6 * MB, label="family-dinner.jpg"),
        Photo(photo_id=5, cost=0.9 * MB, label="passport-scan.jpg"),
    ]
    # Embeddings stand in for ResNet features; similar shots point the
    # same way.  (Real use: repro.images.PhotoEmbedder on your images.)
    rng = np.random.default_rng(0)
    base = rng.standard_normal((4, 16))
    emb = np.vstack([
        base[0], base[0] + 0.15 * rng.standard_normal(16),  # two Eiffel shots
        base[1], base[2], base[3], rng.standard_normal(16),
    ])
    emb /= np.linalg.norm(emb, axis=1, keepdims=True)

    specs = [
        SubsetSpec("paris-trip", weight=3.0, members=[0, 1, 2, 3], relevance=[4, 3, 3, 2]),
        SubsetSpec("family", weight=1.5, members=[3, 4], relevance=[1, 3]),
        SubsetSpec("documents", weight=1.0, members=[5], relevance=[1]),
    ]
    instance = PARInstance.build(
        photos, specs, budget=3.5 * MB,
        retained=[5],  # the passport scan must stay local
        embeddings=emb,
    )

    solution = solve(instance, "phocus")
    kept = [photos[p].label for p in solution.selection]
    dropped = [photos[p].label for p in range(len(photos)) if p not in solution.selection]
    print(f"budget 3.5 MB -> keep   : {kept}")
    print(f"              archive  : {dropped}")
    print(f"objective G(S) = {solution.value:.3f} "
          f"(cost {solution.cost / MB:.2f} MB)")
    print("note how only ONE of the two near-duplicate Eiffel shots is kept.\n")


def main() -> None:
    paper_example()
    custom_instance()


if __name__ == "__main__":
    main()
