"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists so the package
installs in fully offline environments where the PEP 517 build path is
unavailable (no ``wheel`` distribution).
"""

from setuptools import setup

setup()
